package exp

// Campaign is the fleet-scale sweep instrument (DESIGN.md §5.8): it
// shards a (task set × server scenario × fault intensity) grid into
// cells, runs every cell as a bounded-memory SplitEDF simulation (job
// log discarded, trace streamed through the one-pass checker instead
// of materialized), and persists one completion record per cell to a
// JSONL checkpoint. Cells derive their RNG streams purely from
// (Seed, cell coordinates) via stats.DeriveSeed, so an interrupted
// campaign resumes from its checkpoint and finishes with aggregate
// tables byte-identical to an uninterrupted run — whichever worker
// count, interruption point, or torn final write got it there.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"rtoffload/internal/chaos"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

// CampaignConfig describes a sharded sweep. The cell grid is
// TaskSets × len(Scenarios) × len(FaultScales); each cell simulates an
// independently drawn Tasks-task system against one server scenario
// wrapped in the heavy chaos preset scaled by one intensity.
type CampaignConfig struct {
	Seed     uint64
	TaskSets int // task-set axis: independent system draws
	Tasks    int // tasks per drawn system (default 32)

	// Scenarios is the server axis (default Busy, NotBusy, Idle).
	// Ignored when FleetScenarios is set.
	Scenarios []server.Scenario
	// FleetScenarios switches the campaign to multi-server fleet
	// cells: the scenario axis becomes these named fleet stress
	// shapes (see FleetScenarioNames), each cell admits its system
	// through the fleet-aware decision manager and routes offloads
	// across per-server fault injectors. Empty = single-server cells.
	FleetScenarios []string
	// FaultScales is the chaos axis: each value scales the heavy
	// preset's fault probabilities (0 = fault-free; default 0, 0.5, 1).
	FaultScales []float64

	Horizon  rtime.Duration // default 2 s
	Parallel int            // worker pool (0 = GOMAXPROCS)

	// Checkpoint is a JSONL file persisting per-cell completion
	// records; "" disables checkpointing. A resumed run skips cells
	// already recorded there.
	Checkpoint string
	// Limit caps the number of cells *computed* by this invocation
	// (0 = no cap). A limited run returns an incomplete result — the
	// interruption hook the kill-and-resume tests and the CI smoke
	// lean on.
	Limit int
}

// CellResult is one cell's completion record — exactly one JSONL line
// in the checkpoint file.
type CellResult struct {
	Cell     int     `json:"cell"`
	TaskSet  int     `json:"taskset"`
	Scenario string  `json:"scenario"`
	Fault    float64 `json:"fault"`
	Jobs     int     `json:"jobs"`
	Finished int     `json:"finished"`
	Misses   int     `json:"misses"`
	Benefit  float64 `json:"benefit"`
	CPUBusy  int64   `json:"cpu_busy_us"`
	Makespan int64   `json:"makespan_us"`
	// Offloaded counts the tasks the fleet decision routed to a
	// server; always 0 (omitted) in single-server cells, whose
	// systems are constructed without the decision manager.
	Offloaded int `json:"offloaded,omitempty"`
}

// CampaignResult reports the completed cells in cell-index order plus
// how this invocation got them (computed here vs resumed from the
// checkpoint).
type CampaignResult struct {
	Config   CampaignConfig
	Cells    []CellResult // completed cells, ascending Cell
	Total    int
	Computed int // cells simulated by this invocation
	Resumed  int // cells loaded from the checkpoint
}

// Complete reports whether every cell of the grid has a record.
func (r *CampaignResult) Complete() bool { return len(r.Cells) == r.Total }

// withDefaults fills the optional axes.
func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Tasks == 0 {
		c.Tasks = 32
	}
	if c.Scenarios == nil && len(c.FleetScenarios) == 0 {
		c.Scenarios = []server.Scenario{server.Busy, server.NotBusy, server.Idle}
	}
	if c.FaultScales == nil {
		c.FaultScales = []float64{0, 0.5, 1}
	}
	if c.Horizon == 0 {
		c.Horizon = rtime.FromMillis(2000)
	}
	return c
}

func (c CampaignConfig) validate() error {
	if c.TaskSets <= 0 || c.Tasks <= 0 {
		return fmt.Errorf("exp: campaign needs TaskSets and Tasks > 0")
	}
	if c.scenAxis() == 0 || len(c.FaultScales) == 0 {
		return fmt.Errorf("exp: campaign needs non-empty scenario and fault axes")
	}
	for _, name := range c.FleetScenarios {
		if _, err := fleetFor(name); err != nil {
			return err
		}
	}
	for _, x := range c.FaultScales {
		if x < 0 {
			return fmt.Errorf("exp: fault scale %g is negative", x)
		}
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("exp: campaign horizon must be positive")
	}
	if c.Limit < 0 {
		return fmt.Errorf("exp: campaign limit must be non-negative")
	}
	return nil
}

// scenAxis is the length of the scenario axis — fleet stress shapes
// when the campaign runs in fleet mode, server scenarios otherwise.
func (c CampaignConfig) scenAxis() int {
	if len(c.FleetScenarios) > 0 {
		return len(c.FleetScenarios)
	}
	return len(c.Scenarios)
}

// scenLabel names scenario-axis index si for tables and records.
func (c CampaignConfig) scenLabel(si int) string {
	if len(c.FleetScenarios) > 0 {
		return c.FleetScenarios[si]
	}
	return c.Scenarios[si].String()
}

// cells is the grid size; cell indices are fault-minor:
// cell = (ts·|scenario axis| + si)·|FaultScales| + fi.
func (c CampaignConfig) cells() int {
	return c.TaskSets * c.scenAxis() * len(c.FaultScales)
}

// campaignHeader is the checkpoint's first line: the campaign's
// identity. Resuming against a mismatched header is refused — a
// checkpoint records cells of exactly one grid.
type campaignHeader struct {
	Magic     string    `json:"magic"`
	Seed      uint64    `json:"seed"`
	TaskSets  int       `json:"tasksets"`
	Tasks     int       `json:"tasks"`
	Scenarios []string  `json:"scenarios"`
	Faults    []float64 `json:"faults"`
	HorizonUS int64     `json:"horizon_us"`
	// Fleet is the fleet-scenario axis; omitted for single-server
	// campaigns so their headers stay byte-identical to pre-fleet
	// checkpoints.
	Fleet []string `json:"fleet,omitempty"`
}

const campaignMagic = "rtoffload-campaign/1"

func (c CampaignConfig) headerLine() ([]byte, error) {
	names := make([]string, len(c.Scenarios))
	for i, s := range c.Scenarios {
		names[i] = s.String()
	}
	return json.Marshal(campaignHeader{
		Magic:     campaignMagic,
		Seed:      c.Seed,
		TaskSets:  c.TaskSets,
		Tasks:     c.Tasks,
		Scenarios: names,
		Faults:    c.FaultScales,
		HorizonUS: int64(c.Horizon),
		Fleet:     c.FleetScenarios,
	})
}

// loadCampaignCheckpoint reads the completed-cell records of path.
// It returns the cells, plus the byte offset of the end of the last
// intact line — the caller truncates there before appending, which is
// what makes a kill mid-write (torn final line) recoverable. A missing
// file returns offset -1. A complete line that fails to parse, or an
// intact header for a different campaign, is corruption, not a torn
// write, and errors out.
func loadCampaignCheckpoint(path string, header []byte, total int) (map[int]CellResult, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return map[int]CellResult{}, -1, nil
	}
	if err != nil {
		return nil, 0, err
	}
	cells := make(map[int]CellResult)
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		// Torn header: the file dies before its first newline. Start over.
		return cells, 0, nil
	}
	if !bytes.Equal(data[:i], header) {
		return nil, 0, fmt.Errorf("exp: checkpoint %s belongs to a different campaign", path)
	}
	off := int64(i + 1)
	for {
		rest := data[off:]
		j := bytes.IndexByte(rest, '\n')
		if j < 0 {
			// Torn final line from an interrupted append: drop it.
			return cells, off, nil
		}
		var r CellResult
		if err := json.Unmarshal(rest[:j], &r); err != nil {
			return nil, 0, fmt.Errorf("exp: checkpoint %s: corrupt record at offset %d: %w", path, off, err)
		}
		if r.Cell < 0 || r.Cell >= total {
			return nil, 0, fmt.Errorf("exp: checkpoint %s: cell %d out of range [0,%d)", path, r.Cell, total)
		}
		cells[r.Cell] = r
		off += int64(j + 1)
	}
}

// RunCampaign runs (or resumes) the sweep. Pending cells fan out on
// cfg.Parallel workers; each completion is appended to the checkpoint
// before the cell is reported done, so a kill at any instant loses at
// most in-flight cells — never recorded ones.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, err := chaos.Preset("heavy")
	if err != nil {
		return nil, err
	}
	total := cfg.cells()

	done := map[int]CellResult{}
	var ckpt *os.File
	if cfg.Checkpoint != "" {
		header, err := cfg.headerLine()
		if err != nil {
			return nil, err
		}
		var valid int64
		done, valid, err = loadCampaignCheckpoint(cfg.Checkpoint, header, total)
		if err != nil {
			return nil, err
		}
		ckpt, err = os.OpenFile(cfg.Checkpoint, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		if valid <= 0 {
			valid = 0
			if err := ckpt.Truncate(0); err != nil {
				return nil, err
			}
			n, err := ckpt.Write(append(header, '\n'))
			if err != nil {
				return nil, err
			}
			valid = int64(n)
		} else if err := ckpt.Truncate(valid); err != nil {
			return nil, err
		}
		if _, err := ckpt.Seek(valid, io.SeekStart); err != nil {
			return nil, err
		}
	}
	resumed := len(done)

	pending := make([]int, 0, total-resumed)
	for cell := 0; cell < total; cell++ {
		if _, ok := done[cell]; !ok {
			pending = append(pending, cell)
		}
	}
	if cfg.Limit > 0 && len(pending) > cfg.Limit {
		pending = pending[:cfg.Limit]
	}

	var mu sync.Mutex
	fresh, err := parallel.Map(cfg.Parallel, len(pending), func(i int) (CellResult, error) {
		r, err := cfg.runCell(pending[i], base)
		if err != nil {
			return CellResult{}, err
		}
		if ckpt != nil {
			line, err := json.Marshal(r)
			if err != nil {
				return CellResult{}, err
			}
			mu.Lock()
			_, err = ckpt.Write(append(line, '\n'))
			mu.Unlock()
			if err != nil {
				return CellResult{}, fmt.Errorf("exp: checkpoint append: %w", err)
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range fresh {
		done[r.Cell] = r
	}

	out := &CampaignResult{
		Config:   cfg,
		Total:    total,
		Computed: len(pending),
		Resumed:  resumed,
	}
	for cell := 0; cell < total; cell++ {
		if r, ok := done[cell]; ok {
			out.Cells = append(out.Cells, r)
		}
	}
	return out, nil
}

// runCell simulates one cell in bounded memory: the per-job log is
// discarded and the trace streams through the one-pass checker, so a
// cell's footprint is the task set plus in-flight jobs — independent
// of the horizon. Every RNG stream derives from (Seed, ts, si, fi),
// never from execution order.
func (c CampaignConfig) runCell(cell int, base chaos.Config) (CellResult, error) {
	if len(c.FleetScenarios) > 0 {
		return c.runFleetCell(cell, base)
	}
	nf, ns := len(c.FaultScales), len(c.Scenarios)
	fi := cell % nf
	si := (cell / nf) % ns
	ts := cell / (nf * ns)

	key := func(stream uint64) uint64 {
		return stats.DeriveSeed(c.Seed, streamCampaign,
			uint64(ts), uint64(si), uint64(fi), stream)
	}
	asgs := campaignSystem(stats.NewRNG(key(1)), c.Tasks)
	srv, err := server.NewScenario(stats.NewRNG(key(2)), c.Scenarios[si])
	if err != nil {
		return CellResult{}, err
	}
	inj, err := chaos.New(srv, base.Scale(c.FaultScales[fi]), stats.NewRNG(key(3)))
	if err != nil {
		return CellResult{}, err
	}
	res, err := sched.Run(sched.Config{
		Assignments:       asgs,
		Server:            inj,
		Horizon:           c.Horizon,
		Policy:            sched.SplitEDF,
		EventQueue:        sched.AutoQueue,
		DiscardJobResults: true,
		TraceSink:         trace.NewStreamChecker(),
	})
	if err != nil {
		return CellResult{}, fmt.Errorf("exp: campaign cell %d: %w", cell, err)
	}
	out := CellResult{
		Cell:     cell,
		TaskSet:  ts,
		Scenario: c.Scenarios[si].String(),
		Fault:    c.FaultScales[fi],
		Misses:   res.Misses,
		Benefit:  res.NormalizedBenefit(),
		CPUBusy:  int64(res.CPUBusy),
		Makespan: int64(res.Makespan),
	}
	for id := 0; id < c.Tasks; id++ {
		if st := res.PerTask[id]; st != nil {
			out.Jobs += st.Released
			out.Finished += st.Finished
		}
	}
	return out, nil
}

// campaignSystem draws a fleet-shaped system: light per-task load,
// every third task offloaded against the scenario server, the rest
// local.
func campaignSystem(rng *stats.RNG, n int) []sched.Assignment {
	shares := rng.UUniFast(n, 0.6)
	asgs := make([]sched.Assignment, 0, n)
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(rng.UniformInt(20, 400))
		c := rtime.Duration(shares[i] * float64(period))
		if c < 2 {
			c = 2
		}
		tk := &task.Task{ID: i, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1}
		if i%3 == 0 {
			tk.Setup = c/4 + 1
			tk.Compensation = c
			tk.PostProcess = c / 6
			tk.Levels = []task.Level{{
				Response: rtime.Duration(float64(period) * 0.4),
				Benefit:  2,
			}}
			asgs = append(asgs, sched.Assignment{Task: tk, Offload: true})
		} else {
			asgs = append(asgs, sched.Assignment{Task: tk})
		}
	}
	return asgs
}

// WriteCampaignTable prints the aggregate table: one row per
// (scenario, fault) pair aggregated across the task-set axis, in axis
// order. It requires a complete result, and its bytes depend only on
// the campaign config — not on worker count, interruptions, or
// resumes.
func WriteCampaignTable(w io.Writer, r *CampaignResult) error {
	if !r.Complete() {
		return fmt.Errorf("exp: campaign incomplete: %d/%d cells", len(r.Cells), r.Total)
	}
	cfg := r.Config
	nf, ns := len(cfg.FaultScales), cfg.scenAxis()
	fleetMode := len(cfg.FleetScenarios) > 0
	var rows [][]string
	for si := 0; si < ns; si++ {
		for fi := range cfg.FaultScales {
			var cells, jobs, finished, misses, offloaded int
			var benefit float64
			for ts := 0; ts < cfg.TaskSets; ts++ {
				cell := (ts*ns+si)*nf + fi
				rec := r.Cells[cell]
				cells++
				jobs += rec.Jobs
				finished += rec.Finished
				misses += rec.Misses
				offloaded += rec.Offloaded
				benefit += rec.Benefit
			}
			missRate := 0.0
			if jobs > 0 {
				missRate = float64(misses) / float64(jobs)
			}
			row := []string{
				cfg.scenLabel(si),
				fmt.Sprintf("%.2f", cfg.FaultScales[fi]),
				fmt.Sprintf("%d", cells),
				fmt.Sprintf("%d", jobs),
				fmt.Sprintf("%d", misses),
				fmt.Sprintf("%.4f", missRate),
				fmt.Sprintf("%.4f", benefit/float64(cells)),
			}
			if fleetMode {
				row = append(row, fmt.Sprintf("%d", offloaded))
			}
			rows = append(rows, row)
		}
	}
	header := []string{"Scenario", "Fault", "Cells", "Jobs", "Misses", "MissRate", "Benefit"}
	if fleetMode {
		header[0] = "Fleet"
		header = append(header, "Offl")
	}
	return WriteTable(w, header, rows)
}
