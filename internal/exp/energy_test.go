package exp

import (
	"testing"

	"rtoffload/internal/sched"
	"rtoffload/internal/server"
)

func TestEnergyStudy(t *testing.T) {
	rows, err := EnergyStudy(testCaseConfig(), DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byScenario := map[server.Scenario]EnergyRow{}
	for _, r := range rows {
		byScenario[r.Scenario] = r
		if r.Offload.Joules <= 0 || r.Local.Joules <= 0 {
			t.Fatalf("%v: non-positive energy", r.Scenario)
		}
		if r.Offload.Radio <= 0 {
			t.Fatalf("%v: no radio time despite offloading", r.Scenario)
		}
		if r.Local.Radio != 0 {
			t.Fatalf("%v: local baseline used the radio", r.Scenario)
		}
	}
	idle, busy := byScenario[server.Idle], byScenario[server.Busy]
	t.Logf("savings: busy %.2f, not-busy %.2f, idle %.2f",
		busy.Savings, byScenario[server.NotBusy].Savings, idle.Savings)
	// Idle server: results come back, CPU-active drops, energy saved.
	if idle.Savings <= 0 {
		t.Fatalf("idle scenario saved no energy: %+v", idle)
	}
	if idle.Offload.CPUActive >= idle.Local.CPUActive {
		t.Fatal("idle scenario did not cut CPU-active time")
	}
	// Busy server: compensations dominate — less saving than idle, and
	// CPU-active stays near the local baseline.
	if busy.Savings >= idle.Savings {
		t.Fatalf("busy savings %g not below idle %g", busy.Savings, idle.Savings)
	}
	if busy.Comps == 0 || idle.Hits == 0 {
		t.Fatalf("degenerate outcomes: busy comps %d, idle hits %d", busy.Comps, idle.Hits)
	}
	// Invalid model rejected.
	if _, err := EnergyStudy(testCaseConfig(), sched.PowerModel{CPUActiveWatts: -1}); err == nil {
		t.Error("invalid power model accepted")
	}
}
