package exp

// Every RNG in the harness is seeded as
// stats.DeriveSeed(cfg.Seed, stream, indices...), giving each consumer
// a collision-free stream that depends only on the configured seed and
// the unit of work — never on execution order. That independence is
// what makes the parallel.Map rewiring of the hot loops bit-identical
// to a sequential run: whichever worker picks up trial (s, wi), it
// derives the same generator a sequential loop would have.
//
// The ids are part of every experiment's output identity: renumbering
// them changes results exactly like changing the seed does, so new
// streams are appended, never inserted.
const (
	streamFigure2 uint64 = iota + 1
	streamMultiSeed
	streamLatency
	streamEnergy
	streamFigure3Trial
	streamFigure3Sim
	streamSolverAblation
	streamNaiveEDF
	streamDBFAblation
	streamFPAblation
	streamChaosAblation
	streamChaosWrap
	streamCampaign
)
