package exp

import (
	"fmt"

	"rtoffload/internal/core"
	"rtoffload/internal/dbf"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// SolverAblationRow compares decision quality across MCKP solvers on
// the paper's random task sets (ablation B of DESIGN.md).
type SolverAblationRow struct {
	Solver core.Solver
	// MeanQuality is the expected benefit normalized to the DP answer,
	// averaged over trials.
	MeanQuality float64
	// WorstQuality is the minimum across trials.
	WorstQuality float64
}

// SolverAblation runs DP, HEU-OE and greedy over `trials` random
// Figure-3 task sets (fanned out on `workers` goroutines;
// 0 = GOMAXPROCS) and reports their quality relative to DP.
func SolverAblation(seed uint64, trials, workers int) ([]SolverAblationRow, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("exp: trials must be positive")
	}
	solvers := []core.Solver{core.SolverDP, core.SolverHEU, core.SolverGreedy}
	qualities, err := parallel.Map(workers, trials, func(trial int) (map[core.Solver]float64, error) {
		rng := stats.NewRNG(stats.DeriveSeed(seed, streamSolverAblation, uint64(trial)))
		set, err := task.GenerateFigure3(rng, task.DefaultFigure3Params())
		if err != nil {
			return nil, err
		}
		dp, err := core.Decide(set, core.Options{Solver: core.SolverDP})
		if err != nil {
			return nil, err
		}
		if dp.TotalExpected <= 0 {
			return nil, fmt.Errorf("exp: degenerate DP answer in trial %d", trial)
		}
		q := map[core.Solver]float64{core.SolverDP: 1}
		for _, s := range solvers[1:] {
			d, err := core.Decide(set, core.Options{Solver: s})
			if err != nil {
				return nil, err
			}
			q[s] = d.TotalExpected / dp.TotalExpected
		}
		return q, nil
	})
	if err != nil {
		return nil, err
	}
	sum := map[core.Solver]float64{}
	worst := map[core.Solver]float64{}
	for _, s := range solvers {
		worst[s] = 1
	}
	for _, q := range qualities {
		for _, s := range solvers {
			sum[s] += q[s]
			if q[s] < worst[s] {
				worst[s] = q[s]
			}
		}
	}
	rows := make([]SolverAblationRow, 0, len(solvers))
	for _, s := range solvers {
		rows = append(rows, SolverAblationRow{
			Solver:       s,
			MeanQuality:  sum[s] / float64(trials),
			WorstQuality: worst[s],
		})
	}
	return rows, nil
}

// NaiveEDFAblationRow compares deadline splitting against naive EDF at
// one Theorem-3 load level (ablation A).
type NaiveEDFAblationRow struct {
	// TargetLoad is the Theorem-3 total the generated systems aim for.
	TargetLoad float64
	Systems    int
	// SplitMissRate / NaiveMissRate: fraction of systems with at least
	// one deadline miss under the adversarial never-responding server.
	SplitMissRate float64
	NaiveMissRate float64
}

// NaiveEDFAblation generates offload-heavy systems across a sweep of
// Theorem-3 load levels and simulates both deadline-assignment
// policies against a server that never returns results (every job
// compensates — the worst case for the second sub-job). Systems fan
// out on `workers` goroutines (0 = GOMAXPROCS).
func NaiveEDFAblation(seed uint64, loads []float64, perLoad, workers int) ([]NaiveEDFAblationRow, error) {
	if len(loads) == 0 || perLoad <= 0 {
		return nil, fmt.Errorf("exp: loads and perLoad must be non-empty")
	}
	for _, load := range loads {
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("exp: load %g out of (0,1]", load)
		}
	}
	type sysResult struct {
		ok, splitMiss, naiveMiss bool
	}
	results, err := parallel.Map(workers, len(loads)*perLoad, func(i int) (sysResult, error) {
		li, sysi := i/perLoad, i%perLoad
		rng := stats.NewRNG(stats.DeriveSeed(seed, streamNaiveEDF, uint64(li), uint64(sysi)))
		asgs, ok := genOffloadSystem(rng, loads[li])
		if !ok {
			return sysResult{}, nil
		}
		splitMiss, err := missUnderPolicy(asgs, sched.SplitEDF)
		if err != nil {
			return sysResult{}, err
		}
		naiveMiss, err := missUnderPolicy(asgs, sched.NaiveEDF)
		if err != nil {
			return sysResult{}, err
		}
		return sysResult{ok: true, splitMiss: splitMiss, naiveMiss: naiveMiss}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]NaiveEDFAblationRow, 0, len(loads))
	for li, load := range loads {
		row := NaiveEDFAblationRow{TargetLoad: load}
		for _, r := range results[li*perLoad : (li+1)*perLoad] {
			if !r.ok {
				continue
			}
			row.Systems++
			if r.splitMiss {
				row.SplitMissRate++
			}
			if r.naiveMiss {
				row.NaiveMissRate++
			}
		}
		if row.Systems > 0 {
			row.SplitMissRate /= float64(row.Systems)
			row.NaiveMissRate /= float64(row.Systems)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// genOffloadSystem draws an adversarial-for-naive-EDF system at the
// target Theorem-3 load: one offloaded task with a budget Ri close to
// its deadline (so its compensation window is thin) plus
// shorter-period local tasks whose jobs have earlier absolute
// deadlines. Under the paper's split deadlines the setup sub-job
// outranks the local jobs and everything fits; under naive EDF the
// setup inherits the late deadline, gets pushed behind the local
// burst, and the compensation overruns.
func genOffloadSystem(rng *stats.RNG, load float64) ([]sched.Assignment, bool) {
	n := rng.IntN(3) + 2 // local tasks
	shares := rng.UUniFast(n+1, load)
	var asgs []sched.Assignment
	var off []dbf.Offloaded
	var loc []dbf.Sporadic

	// The tight offloaded task.
	period := rtime.FromMillis(rng.UniformInt(150, 300))
	r := rtime.Duration(rng.Uniform(0.7, 0.88) * float64(period))
	budgetTotal := rtime.Duration(shares[0] * float64(period-r))
	if budgetTotal < 4 {
		return nil, false
	}
	c1 := budgetTotal / 4
	if c1 < 1 {
		c1 = 1
	}
	c2 := budgetTotal - c1
	o, err := dbf.NewOffloaded(c1, c2, period, period, r)
	if err != nil {
		return nil, false
	}
	off = append(off, o)
	asgs = append(asgs, sched.Assignment{Task: &task.Task{
		ID: 0, Period: period, Deadline: period,
		LocalWCET: c2, Setup: c1, Compensation: c2,
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: r, Benefit: 2}},
	}, Offload: true})

	// Short-period local tasks filling the rest of the load.
	for i := 0; i < n; i++ {
		lp := rtime.FromMillis(rng.UniformInt(30, 100))
		c := rtime.Duration(shares[i+1] * float64(lp))
		if c < 1 {
			c = 1
		}
		s, err := dbf.NewSporadic(c, lp, lp)
		if err != nil {
			return nil, false
		}
		loc = append(loc, s)
		asgs = append(asgs, sched.Assignment{Task: &task.Task{
			ID: i + 1, Period: lp, Deadline: lp, LocalWCET: c, LocalBenefit: 1,
		}})
	}
	if _, ok := dbf.Theorem3(off, loc); !ok {
		return nil, false
	}
	return asgs, true
}

func missUnderPolicy(asgs []sched.Assignment, p sched.Policy) (bool, error) {
	maxT := rtime.Duration(0)
	for _, a := range asgs {
		if a.Task.Period > maxT {
			maxT = a.Task.Period
		}
	}
	res, err := sched.Run(sched.Config{
		Assignments: asgs,
		Server:      server.Fixed{Lost: true},
		Horizon:     10 * maxT,
		Policy:      p,
	})
	if err != nil {
		return false, err
	}
	return res.Misses > 0, nil
}

// DBFAblationRow compares acceptance of the paper's Theorem-3 test
// against the exact processor-demand test (QPA over the true split
// dbf) at one load level (ablation C).
type DBFAblationRow struct {
	TargetLoad float64
	Systems    int
	// Accepted counts per test.
	Theorem3Accepted int
	ExactAccepted    int
}

// DBFAblation sweeps nominal load levels; at each level it generates
// systems whose *Theorem-3* total is near the level (some above 1) and
// counts how many each test admits. The exact test dominates: it
// accepts everything Theorem 3 accepts plus systems whose linear bound
// is pessimistic (large Ri). Systems fan out on `workers` goroutines
// (0 = GOMAXPROCS).
func DBFAblation(seed uint64, loads []float64, perLoad, workers int) ([]DBFAblationRow, error) {
	if len(loads) == 0 || perLoad <= 0 {
		return nil, fmt.Errorf("exp: loads and perLoad must be non-empty")
	}
	type sysResult struct {
		ok, thm3, exact bool
	}
	results, err := parallel.Map(workers, len(loads)*perLoad, func(i int) (sysResult, error) {
		li, sysi := i/perLoad, i%perLoad
		rng := stats.NewRNG(stats.DeriveSeed(seed, streamDBFAblation, uint64(li), uint64(sysi)))
		n := rng.IntN(5) + 2
		shares := rng.UUniFast(n, loads[li])
		var off []dbf.Offloaded
		var ds []dbf.Demand
		for i := 0; i < n; i++ {
			period := rtime.FromMillis(rng.UniformInt(50, 400))
			r := rtime.Duration(rng.Int64N(int64(period * 3 / 4)))
			budgetTotal := rtime.Duration(shares[i] * float64(period-r))
			if budgetTotal < 2 || budgetTotal > period {
				return sysResult{}, nil
			}
			c1 := budgetTotal / 4
			if c1 < 1 {
				c1 = 1
			}
			o, err := dbf.NewOffloaded(c1, budgetTotal-c1, period, period, r)
			if err != nil {
				return sysResult{}, nil
			}
			off = append(off, o)
			ds = append(ds, o)
		}
		res := sysResult{ok: true}
		if _, pass := dbf.Theorem3(off, nil); pass {
			res.thm3 = true
		}
		az, err := dbf.NewAnalyzer(ds)
		if err != nil {
			return sysResult{}, err
		}
		if az.Feasible() == nil {
			res.exact = true
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]DBFAblationRow, 0, len(loads))
	for li, load := range loads {
		row := DBFAblationRow{TargetLoad: load}
		for _, r := range results[li*perLoad : (li+1)*perLoad] {
			if !r.ok {
				continue
			}
			row.Systems++
			if r.thm3 {
				row.Theorem3Accepted++
			}
			if r.exact {
				row.ExactAccepted++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
