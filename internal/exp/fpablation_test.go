package exp

import "testing"

// The FP ablation (DESIGN.md ablation D): the paper builds on EDF
// because FP handles self-suspensions poorly. Expected dominance per
// load level: FP-oblivious ≤ FP-jitter and EDF-Theorem3 ≤ EDF-exact;
// and at high load the EDF split tests admit more systems than the
// FP analyses.
func TestFPAblation(t *testing.T) {
	rows, err := FPAblation(13, []float64{0.4, 0.6, 0.8}, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var sumObl, sumJit, sumThm, sumExact, systems int
	for _, r := range rows {
		if r.Systems == 0 {
			t.Fatalf("load %g: no systems", r.TargetLoad)
		}
		if r.FPOblivious > r.FPJitter {
			t.Fatalf("load %g: oblivious (%d) above jitter (%d)", r.TargetLoad, r.FPOblivious, r.FPJitter)
		}
		if r.EDFTheorem3 > r.EDFExact {
			t.Fatalf("load %g: Theorem 3 (%d) above exact (%d)", r.TargetLoad, r.EDFTheorem3, r.EDFExact)
		}
		sumObl += r.FPOblivious
		sumJit += r.FPJitter
		sumThm += r.EDFTheorem3
		sumExact += r.EDFExact
		systems += r.Systems
	}
	t.Logf("acceptance over %d systems: FP-obl %d, FP-jit %d, EDF-thm3 %d, EDF-exact %d",
		systems, sumObl, sumJit, sumThm, sumExact)
	if sumExact <= sumJit {
		t.Fatalf("EDF exact (%d) does not beat FP jitter (%d)", sumExact, sumJit)
	}
	if sumThm <= sumObl {
		t.Fatalf("EDF Theorem 3 (%d) does not beat FP oblivious (%d)", sumThm, sumObl)
	}
	if _, err := FPAblation(1, nil, 5, 1); err == nil {
		t.Error("empty loads accepted")
	}
	if _, err := FPAblation(1, []float64{2}, 5, 1); err == nil {
		t.Error("load > 1 accepted")
	}
}
