package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
)

// smallCampaign is a 16-cell grid tiny enough to run in a unit test
// yet spanning every axis.
func smallCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:        0x9e1,
		TaskSets:    4,
		Tasks:       12,
		Scenarios:   []server.Scenario{server.Idle, server.Busy},
		FaultScales: []float64{0, 0.75},
		Horizon:     rtime.FromMillis(400),
		Parallel:    2,
	}
}

// tableBytes runs a campaign to completion and renders its table.
func tableBytes(t *testing.T, cfg CampaignConfig) []byte {
	t.Helper()
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("campaign incomplete: %d/%d", len(res.Cells), res.Total)
	}
	var buf bytes.Buffer
	if err := WriteCampaignTable(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignResumeByteIdentical is the kill-and-resume differential:
// a campaign interrupted by the Limit hook and resumed from its
// checkpoint must print the exact bytes of an uninterrupted run.
func TestCampaignResumeByteIdentical(t *testing.T) {
	cfg := smallCampaign()
	want := tableBytes(t, cfg)

	ck := cfg
	ck.Checkpoint = filepath.Join(t.TempDir(), "campaign.jsonl")
	ck.Limit = 5
	part, err := RunCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() || part.Computed != 5 || part.Resumed != 0 {
		t.Fatalf("limited run: complete=%v computed=%d resumed=%d",
			part.Complete(), part.Computed, part.Resumed)
	}
	if err := WriteCampaignTable(os.Stderr, part); err == nil {
		t.Fatal("incomplete campaign rendered a table")
	}

	ck.Limit = 0
	full, err := RunCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete() || full.Resumed != 5 || full.Computed != full.Total-5 {
		t.Fatalf("resumed run: complete=%v computed=%d resumed=%d",
			full.Complete(), full.Computed, full.Resumed)
	}
	var buf bytes.Buffer
	if err := WriteCampaignTable(&buf, full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("resumed table diverges:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	data, err := os.ReadFile(ck.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+full.Total {
		t.Fatalf("checkpoint has %d lines, want header + %d cells", len(lines), full.Total)
	}
}

// TestCampaignResumeAfterTornWrite kills the checkpoint mid-record (a
// torn final line, as a SIGKILL during an append leaves behind) and
// proves the resume recomputes the lost cell and still matches.
func TestCampaignResumeAfterTornWrite(t *testing.T) {
	cfg := smallCampaign()
	want := tableBytes(t, cfg)

	ck := cfg
	ck.Checkpoint = filepath.Join(t.TempDir(), "campaign.jsonl")
	if _, err := RunCampaign(ck); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ck.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-9] // chop into the last record's JSON
	if err := os.WriteFile(ck.Checkpoint, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := RunCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if res.Computed != 1 || res.Resumed != res.Total-1 {
		t.Fatalf("torn resume: computed=%d resumed=%d of %d", res.Computed, res.Resumed, res.Total)
	}
	var buf bytes.Buffer
	if err := WriteCampaignTable(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("torn-resume table diverges:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestCampaignWorkerCountInvariance pins the determinism contract:
// the table depends only on the config, never on the fan-out width.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	seq := smallCampaign()
	seq.Parallel = 1
	wide := smallCampaign()
	wide.Parallel = 8
	if a, b := tableBytes(t, seq), tableBytes(t, wide); !bytes.Equal(a, b) {
		t.Fatalf("worker count changed the table:\n%s\nvs:\n%s", a, b)
	}
}

// TestCampaignCheckpointMismatchRejected proves a checkpoint cannot be
// resumed by a different campaign.
func TestCampaignCheckpointMismatchRejected(t *testing.T) {
	cfg := smallCampaign()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg.Limit = 2
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if _, err := RunCampaign(other); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("mismatched resume accepted: %v", err)
	}
}

// TestCampaignCorruptRecordRejected distinguishes real corruption (a
// complete but unparseable line) from a tolerated torn tail.
func TestCampaignCorruptRecordRejected(t *testing.T) {
	cfg := smallCampaign()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "campaign.jsonl")
	cfg.Limit = 3
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(cfg.Checkpoint, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := RunCampaign(cfg); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt checkpoint accepted: %v", err)
	}
}

// TestCampaignCellRecords sanity-checks the per-cell records: every
// cell simulated something, and fault-free Idle cells ride the hit
// path (positive normalized benefit over all-local).
func TestCampaignCellRecords(t *testing.T) {
	cfg := smallCampaign()
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.Cell != i {
			t.Fatalf("cell %d recorded as %d", i, c.Cell)
		}
		if c.Jobs <= 0 || c.Finished <= 0 {
			t.Fatalf("cell %d simulated nothing: %+v", i, c)
		}
		if c.Scenario == server.Idle.String() && c.Fault == 0 && c.Benefit <= 1 {
			t.Fatalf("fault-free idle cell %d gained no benefit: %+v", i, c)
		}
	}
}
