package exp

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rtoffload/internal/rtime"
)

// smallFleetCampaign is a 20-cell fleet grid tiny enough for a unit
// test yet spanning every fleet stress shape.
func smallFleetCampaign() CampaignConfig {
	return CampaignConfig{
		Seed:           0x9e2,
		TaskSets:       2,
		Tasks:          10,
		FleetScenarios: FleetScenarioNames(),
		FaultScales:    []float64{0, 0.75},
		Horizon:        rtime.FromMillis(400),
		Parallel:       2,
	}
}

// TestFleetCampaignResumeByteIdentical extends the kill-and-resume
// differential to fleet mode: interrupt via Limit, resume from the
// checkpoint, and the table must equal an uninterrupted run's bytes.
func TestFleetCampaignResumeByteIdentical(t *testing.T) {
	cfg := smallFleetCampaign()
	want := tableBytes(t, cfg)

	ck := cfg
	ck.Checkpoint = filepath.Join(t.TempDir(), "fleet.jsonl")
	ck.Limit = 4
	part, err := RunCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() || part.Computed != 4 {
		t.Fatalf("limited run: complete=%v computed=%d", part.Complete(), part.Computed)
	}
	ck.Limit = 0
	full, err := RunCampaign(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete() || full.Resumed != 4 {
		t.Fatalf("resumed run: complete=%v resumed=%d", full.Complete(), full.Resumed)
	}
	var buf bytes.Buffer
	if err := WriteCampaignTable(&buf, full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("resumed fleet table diverges:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestFleetCampaignWorkerCountInvariance pins determinism for fleet
// cells: the table depends only on the config, never on fan-out.
func TestFleetCampaignWorkerCountInvariance(t *testing.T) {
	seq := smallFleetCampaign()
	seq.Parallel = 1
	wide := smallFleetCampaign()
	wide.Parallel = 8
	if a, b := tableBytes(t, seq), tableBytes(t, wide); !bytes.Equal(a, b) {
		t.Fatalf("worker count changed the fleet table:\n%s\nvs:\n%s", a, b)
	}
}

// TestFleetCampaignCheckpointDistinct proves a single-server
// checkpoint cannot be resumed by a fleet campaign (and vice versa):
// the header's fleet axis is part of the campaign identity.
func TestFleetCampaignCheckpointDistinct(t *testing.T) {
	plain := smallCampaign()
	plain.Checkpoint = filepath.Join(t.TempDir(), "ck.jsonl")
	plain.Limit = 2
	if _, err := RunCampaign(plain); err != nil {
		t.Fatal(err)
	}
	fl := smallFleetCampaign()
	fl.Seed = plain.Seed
	fl.TaskSets = plain.TaskSets
	fl.Tasks = plain.Tasks
	fl.Checkpoint = plain.Checkpoint
	if _, err := RunCampaign(fl); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("fleet campaign resumed a single-server checkpoint: %v", err)
	}
}

// TestFleetCampaignRejectsUnknownScenario pins axis validation.
func TestFleetCampaignRejectsUnknownScenario(t *testing.T) {
	cfg := smallFleetCampaign()
	cfg.FleetScenarios = []string{"uniform", "nonsense"}
	if _, err := RunCampaign(cfg); err == nil ||
		!strings.Contains(err.Error(), "unknown fleet scenario") {
		t.Fatalf("unknown fleet scenario accepted: %v", err)
	}
}

// TestFleetCampaignCellRecords sanity-checks fleet cells: every cell
// ran jobs, missed nothing (the hard guarantee extends to fleets),
// admitted a nonzero number of offloads, and fault-free uniform cells
// beat the all-local baseline.
func TestFleetCampaignCellRecords(t *testing.T) {
	res, err := RunCampaign(smallFleetCampaign())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.Cell != i {
			t.Fatalf("cell %d recorded as %d", i, c.Cell)
		}
		if c.Jobs <= 0 || c.Finished <= 0 {
			t.Fatalf("fleet cell %d simulated nothing: %+v", i, c)
		}
		if c.Misses != 0 {
			t.Fatalf("fleet cell %d missed %d deadlines: %+v", i, c.Misses, c)
		}
		if c.Offloaded <= 0 {
			t.Fatalf("fleet cell %d admitted no offloads: %+v", i, c)
		}
		if c.Scenario == "uniform" && c.Fault == 0 && c.Benefit <= 1 {
			t.Fatalf("fault-free uniform cell %d gained no benefit: %+v", i, c)
		}
	}
}
