package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rtoffload/internal/core"
	"rtoffload/internal/server"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Glyph  byte
	Values []float64
}

// RenderChart draws an ASCII line chart of the series over a shared
// x-index (category) axis — enough to eyeball the shape of Figure 2
// and Figure 3 in a terminal. Height is the number of plot rows
// (excluding axes); all series must have equal, non-zero length.
func RenderChart(w io.Writer, title string, xlabels []string, series []Series, height int) error {
	if height < 3 {
		return fmt.Errorf("exp: chart height %d too small", height)
	}
	if len(series) == 0 {
		return fmt.Errorf("exp: no series")
	}
	n := len(series[0].Values)
	if n == 0 {
		return fmt.Errorf("exp: empty series")
	}
	for _, s := range series {
		if len(s.Values) != n {
			return fmt.Errorf("exp: ragged series %q", s.Name)
		}
	}
	if len(xlabels) != n {
		return fmt.Errorf("exp: %d x labels for %d points", len(xlabels), n)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("exp: non-finite value in series %q", s.Name)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1 // flat data still renders
	}
	// Pad the range slightly so extremes are visible.
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad

	// Columns widen to the longest x label so a long label (e.g. a
	// parallel-swept "+100" axis) can never overwrite its neighbor.
	colWidth := 3
	for _, l := range xlabels {
		if len(l) > colWidth {
			colWidth = len(l)
		}
	}
	plotW := n * colWidth
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range series {
		for i, v := range s.Values {
			c := i*colWidth + colWidth/2
			r := rowOf(v)
			if grid[r][c] == ' ' {
				grid[r][c] = s.Glyph
			} else if grid[r][c] != s.Glyph {
				grid[r][c] = '*' // collision marker
			}
		}
	}

	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	for r := 0; r < height; r++ {
		val := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.2f |%s\n", val, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", plotW)); err != nil {
		return err
	}
	// X labels, centred per column and clamped to the column boundary
	// so no label can bleed into the next one.
	lab := []byte(strings.Repeat(" ", plotW))
	for i, l := range xlabels {
		start := i*colWidth + (colWidth-len(l))/2
		if start < i*colWidth {
			start = i * colWidth
		}
		for k := 0; k < len(l) && start+k < (i+1)*colWidth; k++ {
			lab[start+k] = l[k]
		}
	}
	if _, err := fmt.Fprintf(w, "%8s  %s\n", "", string(lab)); err != nil {
		return err
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Glyph, s.Name))
	}
	_, err := fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, "  "))
	return err
}

// ChartFigure2 renders the case-study sweep as an ASCII chart.
func ChartFigure2(w io.Writer, res *Figure2Result, height int) error {
	xlabels := make([]string, 24)
	for i := range xlabels {
		xlabels[i] = fmt.Sprintf("%d", i+1)
	}
	return RenderChart(w, "Figure 2: normalized total weighted benefits per work set", xlabels, []Series{
		{Name: "busy", Glyph: 'b', Values: res.Series(server.Busy)},
		{Name: "not-busy", Glyph: 'n', Values: res.Series(server.NotBusy)},
		{Name: "idle", Glyph: 'i', Values: res.Series(server.Idle)},
	}, height)
}

// ChartFigure3 renders the accuracy sweep as an ASCII chart.
func ChartFigure3(w io.Writer, res *Figure3Result, ratios []float64, height int) error {
	xlabels := make([]string, len(ratios))
	for i, x := range ratios {
		xlabels[i] = fmt.Sprintf("%+d", int(x*100))
	}
	return RenderChart(w, "Figure 3: normalized total benefits vs estimation accuracy ratio (%)", xlabels, []Series{
		{Name: "DP", Glyph: 'D', Values: res.Series(core.SolverDP)},
		{Name: "HEU-OE", Glyph: 'H', Values: res.Series(core.SolverHEU)},
	}, height)
}
