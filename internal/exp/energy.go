package exp

import (
	"fmt"

	"rtoffload/internal/core"
	"rtoffload/internal/parallel"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

// EnergyRow is one scenario's client-energy account for the case
// study, comparing the offloading configuration against the all-local
// baseline under the same power model.
type EnergyRow struct {
	Scenario server.Scenario
	// Offload is the energy of the decided configuration; Local the
	// all-local baseline. Joules over the horizon.
	Offload sched.EnergyBreakdown
	Local   sched.EnergyBreakdown
	// Savings = 1 − Offload.Joules/Local.Joules (negative when
	// compensations make offloading a net loss).
	Savings float64
	Hits    int
	Comps   int
}

// DefaultPowerModel is a small embedded board: ~2.5 W CPU-active,
// 0.4 W idle, 1.1 W radio (Wi-Fi transmit/listen).
func DefaultPowerModel() sched.PowerModel {
	return sched.PowerModel{CPUActiveWatts: 2.5, CPUIdleWatts: 0.4, RadioWatts: 1.1}
}

// EnergyStudy quantifies the paper's second motivation (energy saving,
// §1 after Li et al.): the case-study configuration runs under each
// server scenario, and client energy is compared against executing
// everything locally. The expected shape: the idle server saves a
// large CPU-active share; the busy server pays the radio *and* the
// compensation, costing more than local execution.
func EnergyStudy(cfg CaseStudyConfig, pm sched.PowerModel) ([]EnergyRow, error) {
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	set, err := CaseTasks(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.Decide(set, core.Options{Solver: cfg.Solver})
	if err != nil {
		return nil, err
	}
	if dec.OffloadedCount() == 0 {
		return nil, fmt.Errorf("exp: energy study degenerate: nothing offloaded")
	}
	localAsgs := make([]sched.Assignment, len(set))
	for i, t := range set {
		localAsgs[i] = sched.Assignment{Task: t}
	}
	horizon := rtime.FromSeconds(cfg.HorizonSeconds)
	scenarios := []server.Scenario{server.Busy, server.NotBusy, server.Idle}
	return parallel.Map(cfg.Parallel, len(scenarios), func(i int) (EnergyRow, error) {
		scenario := scenarios[i]
		srvCfg, err := CaseServerConfig(scenario)
		if err != nil {
			return EnergyRow{}, err
		}
		seed := stats.DeriveSeed(cfg.Seed, streamEnergy, uint64(scenario))
		srv, err := server.NewQueue(stats.NewRNG(seed), srvCfg)
		if err != nil {
			return EnergyRow{}, err
		}
		off, err := sched.Run(sched.Config{Assignments: dec.Assignments(), Server: srv, Horizon: horizon})
		if err != nil {
			return EnergyRow{}, err
		}
		offE, err := off.Energy(pm)
		if err != nil {
			return EnergyRow{}, err
		}
		loc, err := sched.Run(sched.Config{Assignments: localAsgs, Horizon: horizon})
		if err != nil {
			return EnergyRow{}, err
		}
		locE, err := loc.Energy(pm)
		if err != nil {
			return EnergyRow{}, err
		}
		row := EnergyRow{Scenario: scenario, Offload: offE, Local: locE}
		if locE.Joules > 0 {
			row.Savings = 1 - offE.Joules/locE.Joules
		}
		//rtlint:allow determinism -- integer sums over all entries are order-insensitive
		for _, st := range off.PerTask {
			row.Hits += st.Hits
			row.Comps += st.Compensations
		}
		return row, nil
	})
}
