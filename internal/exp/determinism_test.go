package exp

import (
	"bytes"
	"fmt"
	"testing"

	"rtoffload/internal/core"
)

// The engine's contract: an experiment fanned out over any number of
// workers renders byte-for-byte the same output as the sequential run
// (parallel.Map with workers=1 executes inline on the calling
// goroutine — no pool at all).
func TestSolverAblationParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		rows, err := SolverAblation(3, 12, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		for _, r := range rows {
			// %x prints the exact float bits — equality here is
			// bit-identity, not approximate agreement.
			fmt.Fprintf(&buf, "%v %x %x\n", r.Solver, r.MeanQuality, r.WorstQuality)
		}
		return buf.String()
	}
	sequential := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != sequential {
			t.Fatalf("workers=%d diverged from sequential:\n%s\nvs\n%s", workers, got, sequential)
		}
	}
}

// Figure 2 — the full case study with queueing-server simulation — is
// the heavier determinism check: 72 simulations whose per-run RNG
// streams must not depend on which worker picks them up.
func TestFigure2ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study sweep is slow")
	}
	cfg := testCaseConfig()
	cfg.Probes = 60
	cfg.HorizonSeconds = 5
	render := func(workers int) string {
		c := cfg
		c.Parallel = workers
		res, err := Figure2(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := RenderFigure2(&buf, res); err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Points {
			fmt.Fprintf(&buf, "%d %v %x %d %d\n", p.WorkSet, p.Scenario, p.Normalized, p.Offloaded, p.Misses)
		}
		return buf.String()
	}
	sequential := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != sequential {
			t.Fatalf("workers=%d diverged from sequential output", workers)
		}
	}
}

// Figure 3 with the simulation pass enabled: the sequential
// predecessor drew simulation RNGs from a shared fork while iterating
// a Go map, so even two sequential runs could disagree; the derived
// per-(trial, ratio, solver) streams must make every run identical.
func TestFigure3SimulateDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed sweep is slow")
	}
	cfg := DefaultFigure3Config()
	cfg.Trials = 2
	cfg.Ratios = []float64{-0.2, 0, 0.2}
	cfg.Simulate = true
	cfg.SimHorizonSecs = 10
	render := func(workers int) string {
		c := cfg
		c.Parallel = workers
		res, err := Figure3(c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		for _, p := range res.Points {
			fmt.Fprintf(&buf, "%g %v %x %x\n", p.Ratio, p.Solver, p.Normalized, p.SimNormalized)
		}
		return buf.String()
	}
	first := render(1)
	for _, workers := range []int{1, 4} {
		if got := render(workers); got != first {
			t.Fatalf("workers=%d diverged from sequential output", workers)
		}
	}
}

// Seed independence at the experiment level: distinct base seeds must
// produce distinct sweeps (the additive-offset scheme collided base
// 7919/run 0 with base 0/run 1, making "independent" studies share
// trials).
func TestSolverAblationSeedIndependence(t *testing.T) {
	a, err := SolverAblation(0, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolverAblation(1, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Solver == core.SolverDP {
			continue // DP is 1 by normalization under both seeds
		}
		if a[i].MeanQuality != b[i].MeanQuality || a[i].WorstQuality != b[i].WorstQuality {
			same = false
		}
	}
	if same {
		t.Fatal("adjacent base seeds produced identical ablation results")
	}
}
