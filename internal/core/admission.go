package core

import (
	"fmt"

	"rtoffload/internal/task"
)

// Admission is the online face of the Offloading Decision Manager: it
// maintains a current task set and decision, re-deciding when tasks
// arrive or leave and rejecting arrivals that would make the system
// unschedulable even with every task local. With Options.ExactUpgrade
// set, every re-decision is additionally upgraded through the
// incremental dbf.Analyzer's exact QPA oracle, so churn stays cheap
// even when the exact test is in the loop.
type Admission struct {
	opts  Options
	tasks task.Set
	dec   *Decision
}

// NewAdmission creates an empty admission manager.
func NewAdmission(opts Options) *Admission {
	return &Admission{opts: opts}
}

// Decision returns the current decision (nil before the first
// successful Add).
func (a *Admission) Decision() *Decision { return a.dec }

// Tasks returns a copy of the currently admitted set.
func (a *Admission) Tasks() task.Set { return a.tasks.Clone() }

// Add admits a task if the grown system remains schedulable; on
// rejection the previous configuration is kept untouched.
func (a *Admission) Add(t *task.Task) error {
	if t == nil {
		return fmt.Errorf("core: nil task")
	}
	if a.tasks.ByID(t.ID) != nil {
		return fmt.Errorf("core: task %d already admitted", t.ID)
	}
	grown := append(a.tasks.Clone(), t)
	dec, err := Decide(grown, a.opts)
	if err != nil {
		return fmt.Errorf("core: admission of task %d rejected: %w", t.ID, err)
	}
	a.tasks = grown
	a.dec = dec
	return nil
}

// Remove drops a task and re-decides (more capacity usually means more
// offloading). It reports whether the task was present.
func (a *Admission) Remove(id int) (bool, error) {
	idx := -1
	for i, t := range a.tasks {
		if t.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	shrunk := append(a.tasks[:idx:idx].Clone(), a.tasks[idx+1:].Clone()...)
	if len(shrunk) == 0 {
		a.tasks = nil
		a.dec = nil
		return true, nil
	}
	dec, err := Decide(shrunk, a.opts)
	if err != nil {
		return true, fmt.Errorf("core: re-decision after removing %d failed: %w", id, err)
	}
	a.tasks = shrunk
	a.dec = dec
	return true, nil
}
