package core

import (
	"errors"
	"fmt"
	"math/big"

	"rtoffload/internal/dbf"
	"rtoffload/internal/mckp"
	"rtoffload/internal/task"
)

// Sentinel errors wrapped by the admission operations so callers (the
// admitd service in particular) can map rejection causes to transport
// status codes with errors.Is instead of string matching.
var (
	// ErrAlreadyAdmitted: Add was called with the ID of a task that is
	// already part of the admitted set.
	ErrAlreadyAdmitted = errors.New("already admitted")
	// ErrNotAdmitted: Update referenced an ID that is not admitted.
	ErrNotAdmitted = errors.New("not admitted")
)

// Admission is the online face of the Offloading Decision Manager: it
// maintains a current task set and decision, re-deciding when tasks
// arrive, change, or leave, and rejecting any request whose grown or
// shrunk system the decision pipeline cannot certify schedulable.
//
// Every re-decision is incremental: per-task MCKP classes and exact
// demand models are cached at admission time, and with
// Options.ExactUpgrade the exact QPA oracle runs over one persistent
// dbf.Analyzer that is kept in sync with the current decision by O(1)
// append/remove/swap deltas instead of being rebuilt from scratch. The
// decisions produced are nevertheless bit-identical to a from-scratch
// Decide over the same task set — that is the differential contract
// TestAdmissionMatchesRebuild enforces.
//
// Atomicity invariant: Add, Update, and Remove either commit fully —
// the task set, the caches, the analyzer, and the decision all advance
// together — or reject with an error and leave every piece of state
// exactly as it was. A rejected call never leaves a stale decision or
// a half-admitted task behind; after an error, Decision() still
// describes the currently admitted set.
type Admission struct {
	opts  Options
	tasks task.Set
	dec   *Decision

	// origs holds the tasks as admitted when a fleet is configured;
	// tasks then holds their fleet-expanded twins (the decision layer's
	// working form). Nil without a fleet.
	origs task.Set

	// Per-task caches, index-aligned with tasks.
	classes []mckp.Class
	maps    [][]classMap
	locals  []dbf.Demand
	levels  [][]dbf.Demand

	// Exact-upgrade state (maintained only when opts.ExactUpgrade):
	// az's slot i always holds azDemands[i], the exact demand of
	// dec.Choices[i]. A nil az is rebuilt from the caches on the next
	// re-decision.
	az        *dbf.Analyzer
	azDemands []dbf.Demand

	// Persistent MCKP solver (maintained for the solvers that profit
	// from cached per-class preprocessing: SolverCore, SolverDP,
	// SolverHEU). Its class i always mirrors the committed classes[i];
	// redecide advances it by one structural delta before solving and
	// rolls the delta back if the re-decision is rejected, mirroring
	// the analyzer's sync discipline. A nil mk is rebuilt from the
	// tentative classes on the next re-decision.
	mk *mckp.Solver
}

// NewAdmission creates an empty admission manager.
func NewAdmission(opts Options) *Admission {
	return &Admission{opts: opts}
}

// Decision returns the current decision (nil before the first
// successful Add).
func (a *Admission) Decision() *Decision { return a.dec }

// Tasks returns a copy of the currently admitted set — the tasks as
// the caller admitted them, before any fleet expansion.
func (a *Admission) Tasks() task.Set {
	if !a.opts.Fleet.Empty() {
		return a.origs.Clone()
	}
	return a.tasks.Clone()
}

// Len returns the number of admitted tasks.
func (a *Admission) Len() int { return len(a.tasks) }

// cloneTask deep-copies one task so admitted state never aliases
// caller-owned memory.
func cloneTask(t *task.Task) *task.Task {
	c := *t
	c.Levels = append([]task.Level(nil), t.Levels...)
	return &c
}

// expandForFleet maps an admitted task to its decision-layer form: the
// fleet-expanded twin when a fleet is configured, the task itself
// otherwise.
func (a *Admission) expandForFleet(t *task.Task) (*task.Task, error) {
	if a.opts.Fleet.Empty() {
		return t, nil
	}
	if err := a.opts.Fleet.Validate(); err != nil {
		return nil, err
	}
	return a.opts.Fleet.ExpandTask(t)
}

// Add admits a task if the grown system remains schedulable; on
// rejection the previous configuration is kept untouched. The task is
// copied, so later caller mutations do not affect the admitted state.
func (a *Admission) Add(t *task.Task) error {
	if t == nil {
		return fmt.Errorf("core: nil task")
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("core: admission of task %d rejected: %w", t.ID, err)
	}
	if a.tasks.ByID(t.ID) != nil {
		return fmt.Errorf("core: task %d %w", t.ID, ErrAlreadyAdmitted)
	}
	orig := cloneTask(t)
	t, err := a.expandForFleet(orig)
	if err != nil {
		return fmt.Errorf("core: admission of task %d rejected: %w", orig.ID, err)
	}
	tc := buildTaskCache(t)
	n := len(a.tasks)
	origs := a.origs
	if !a.opts.Fleet.Empty() {
		origs = append(a.origs[:n:n], orig)
	}
	tasks := append(a.tasks[:n:n], t)
	classes := append(a.classes[:n:n], tc.class)
	maps := append(a.maps[:n:n], tc.cm)
	locals := append(a.locals[:n:n], tc.local)
	levels := append(a.levels[:n:n], tc.levels)
	dec, azd, err := a.redecide(tasks, classes, maps, locals, levels, structOp{kind: opGrow})
	if err != nil {
		return fmt.Errorf("core: admission of task %d rejected: %w", t.ID, err)
	}
	a.commit(origs, tasks, classes, maps, locals, levels, dec, azd)
	return nil
}

// Update atomically replaces the admitted task with t's ID by t and
// re-decides; on rejection (including an unknown ID) the previous
// configuration is kept untouched.
func (a *Admission) Update(t *task.Task) error {
	if t == nil {
		return fmt.Errorf("core: nil task")
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("core: update of task %d rejected: %w", t.ID, err)
	}
	idx := a.indexOf(t.ID)
	if idx < 0 {
		return fmt.Errorf("core: task %d %w", t.ID, ErrNotAdmitted)
	}
	orig := cloneTask(t)
	t, err := a.expandForFleet(orig)
	if err != nil {
		return fmt.Errorf("core: update of task %d rejected: %w", orig.ID, err)
	}
	tc := buildTaskCache(t)
	origs := a.origs
	if !a.opts.Fleet.Empty() {
		origs = a.origs.Clone()
		origs[idx] = orig
	}
	tasks := a.tasks.Clone()
	tasks[idx] = t
	classes := append([]mckp.Class(nil), a.classes...)
	classes[idx] = tc.class
	maps := append([][]classMap(nil), a.maps...)
	maps[idx] = tc.cm
	locals := append([]dbf.Demand(nil), a.locals...)
	locals[idx] = tc.local
	levels := append([][]dbf.Demand(nil), a.levels...)
	levels[idx] = tc.levels
	dec, azd, err := a.redecide(tasks, classes, maps, locals, levels, structOp{kind: opSame, idx: idx})
	if err != nil {
		return fmt.Errorf("core: update of task %d rejected: %w", t.ID, err)
	}
	a.commit(origs, tasks, classes, maps, locals, levels, dec, azd)
	return nil
}

// Remove drops a task and re-decides (more capacity usually means more
// offloading). It reports whether the task was removed: (false, nil)
// for an unknown ID, and (false, err) when the shrunk system's
// re-decision fails — the task then stays admitted and the previous
// decision remains valid (Theorem 3 is only sufficient, so a set that
// was certified through the exact upgrade can lose its Theorem-3
// certificate when a task leaves).
func (a *Admission) Remove(id int) (bool, error) {
	idx := a.indexOf(id)
	if idx < 0 {
		return false, nil
	}
	if len(a.tasks) == 1 {
		a.commit(nil, nil, nil, nil, nil, nil, nil, nil)
		a.az = nil
		if a.mk != nil {
			a.mk.Reset() // keep the arenas warm for the next admission
		}
		return true, nil
	}
	origs := a.origs
	if !a.opts.Fleet.Empty() {
		origs = append(a.origs[:idx:idx].Clone(), a.origs[idx+1:].Clone()...)
	}
	tasks := append(a.tasks[:idx:idx].Clone(), a.tasks[idx+1:].Clone()...)
	classes := removeAt(a.classes, idx)
	maps := removeAt(a.maps, idx)
	locals := removeAt(a.locals, idx)
	levels := removeAt(a.levels, idx)
	dec, azd, err := a.redecide(tasks, classes, maps, locals, levels, structOp{kind: opShrink, idx: idx})
	if err != nil {
		return false, fmt.Errorf("core: re-decision after removing %d failed: %w", id, err)
	}
	a.commit(origs, tasks, classes, maps, locals, levels, dec, azd)
	return true, nil
}

// indexOf returns the position of the task with the given ID, or −1.
func (a *Admission) indexOf(id int) int {
	for i, t := range a.tasks {
		if t.ID == id {
			return i
		}
	}
	return -1
}

// removeAt returns a copy of xs without element i.
func removeAt[T any](xs []T, i int) []T {
	out := make([]T, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

// commit installs a fully re-decided configuration.
func (a *Admission) commit(origs, tasks task.Set, classes []mckp.Class, maps [][]classMap,
	locals []dbf.Demand, levels [][]dbf.Demand, dec *Decision, azd []dbf.Demand) {
	a.origs = origs
	a.tasks = tasks
	a.classes = classes
	a.maps = maps
	a.locals = locals
	a.levels = levels
	a.dec = dec
	a.azDemands = azd
}

// structOp describes how the tentative configuration relates to the
// committed one, so the analyzer sync can apply the matching
// structural delta.
type structOp struct {
	kind int
	idx  int // replaced position for opSame, removed position for opShrink
}

const (
	opSame   = iota // same length, task at idx replaced
	opGrow          // one task appended at the end
	opShrink        // task at idx removed, order preserved
)

// redecide runs the decision pipeline — solve, assemble, repair, and
// (with ExactUpgrade) the warm-started exact upgrade — over a
// tentative configuration. All fallible steps (solver, repair) run
// before any shared state is touched, so a returned error implies a
// has not been mutated; the analyzer is only advanced afterwards,
// during the infallible upgrade phase, and the caller always commits
// on success.
func (a *Admission) redecide(tasks task.Set, classes []mckp.Class, maps [][]classMap,
	locals []dbf.Demand, levels [][]dbf.Demand, op structOp) (*Decision, []dbf.Demand, error) {
	in := &mckp.Instance{Capacity: 1, Classes: classes}
	sol, synced, err := a.solveIncremental(in, classes, op)
	fail := func(err error) (*Decision, []dbf.Demand, error) {
		if synced {
			a.rollbackSolver(op)
		}
		return nil, nil, err
	}
	if err != nil {
		return fail(err)
	}
	d := assembleDecision(tasks, maps, sol, a.opts.Solver)
	theorem3 := func(cs []Choice) (*big.Rat, bool) { return theorem3Cached(cs, locals, levels) }
	fleetOn := !a.opts.Fleet.Empty()
	if fleetOn {
		// Step-identical to decideFleet's repair: Theorem 3 first, then
		// the exact capacity pools.
		if err := repairFleetDecision(d, a.opts.Fleet, theorem3); err != nil {
			return fail(err)
		}
	} else if err := repairDecision(d, theorem3); err != nil {
		return fail(err)
	}
	if !a.opts.ExactUpgrade {
		return d, nil, nil
	}
	out := &Decision{
		Choices:       append([]Choice(nil), d.Choices...),
		TotalExpected: d.TotalExpected,
		Solver:        d.Solver,
		Repaired:      d.Repaired,
		ExactVerified: true,
	}
	want := demandsFromCaches(out.Choices, locals, levels)
	var az *dbf.Analyzer
	if want != nil {
		az = a.syncedAnalyzer(want, op)
	}
	if az != nil {
		var guard func([]Choice, int, int) bool
		if fleetOn {
			guard = capacityGuard(a.opts.Fleet)
		}
		improveLoop(out, az, levels, guard)
		want = demandsFromCaches(out.Choices, locals, levels)
	}
	a.az = az
	total, _ := theorem3(out.Choices)
	out.Theorem3Total = total
	if fleetOn {
		out.ServerLoads = decisionLoads(out.Choices, a.opts.Fleet)
	}
	return out, want, nil
}

// usesPersistentSolver reports whether the configured solver runs on
// the persistent mckp.Solver (and so profits from its cached per-class
// frontiers across re-decisions). The remaining solvers (brute, greedy,
// branch-and-bound) keep the stateless per-call path.
func (a *Admission) usesPersistentSolver() bool {
	switch a.opts.Solver {
	case SolverCore, SolverDP, SolverHEU:
		return true
	}
	return false
}

// solveIncremental solves the tentative instance, routing through the
// persistent solver when the configured algorithm supports it. mutated
// reports whether a.mk was advanced to the tentative configuration (the
// caller must roll it back if the re-decision is later rejected); it is
// true even when the solve itself fails, and false when the sync never
// touched the solver. The solutions are bit-identical to the stateless
// path: that is the persistent solver's warm/cold contract, enforced
// here by TestAdmissionMatchesRebuild.
func (a *Admission) solveIncremental(in *mckp.Instance, classes []mckp.Class, op structOp) (sol mckp.Solution, mutated bool, err error) {
	if !a.usesPersistentSolver() {
		sol, err = solveMCKP(in, a.opts)
		return sol, false, err
	}
	if err := a.syncSolver(in, classes, op); err != nil {
		return mckp.Solution{}, false, err
	}
	switch a.opts.Solver {
	case SolverCore:
		sol, err = a.mk.Solve()
	case SolverDP:
		sol, err = a.mk.SolveDP(a.opts.DPResolution)
	case SolverHEU:
		sol, err = a.mk.SolveHEU()
	}
	if errors.Is(err, mckp.ErrInfeasible) {
		err = ErrInfeasible
	}
	return sol, true, err
}

// syncSolver advances the persistent solver from the committed classes
// to the tentative ones by the single structural delta op describes —
// O(1) class work plus an upgrade-pool merge, against the full rebuild
// a stateless solver would pay. A missing or desynchronized solver is
// rebuilt from the tentative classes; a sync error leaves a.mk exactly
// as it was.
func (a *Admission) syncSolver(in *mckp.Instance, classes []mckp.Class, op structOp) error {
	if a.mk == nil || a.mk.Len() != len(a.classes) {
		mk, err := mckp.NewSolverFrom(in)
		if err != nil {
			return err
		}
		a.mk = mk
		return nil
	}
	switch op.kind {
	case opGrow:
		return a.mk.Append(classes[len(classes)-1])
	case opSame:
		return a.mk.Swap(op.idx, classes[op.idx])
	case opShrink:
		return a.mk.Remove(op.idx)
	}
	return fmt.Errorf("core: unknown struct op %d", op.kind)
}

// rollbackSolver undoes the structural delta syncSolver applied, using
// the still-committed a.classes as the source of truth. The inverse
// delta is correct even when syncSolver rebuilt the solver from the
// tentative classes: applying it to the tentative configuration yields
// the committed one either way. The inverse operations cannot fail on
// classes that were committed before; if one does, the solver is
// dropped and rebuilt on the next re-decision.
func (a *Admission) rollbackSolver(op structOp) {
	var err error
	switch op.kind {
	case opGrow:
		err = a.mk.Remove(a.mk.Len() - 1)
	case opSame:
		err = a.mk.Swap(op.idx, a.classes[op.idx])
	case opShrink:
		err = a.mk.Insert(op.idx, a.classes[op.idx])
	default:
		err = fmt.Errorf("core: unknown struct op %d", op.kind)
	}
	if err != nil {
		a.mk = nil
	}
}

// syncedAnalyzer brings the persistent analyzer in line with want (the
// demands of the freshly repaired decision) using O(1) structural and
// swap deltas against azDemands; any inconsistency falls back to a
// fresh build. It returns nil only when want contains a demand the
// caches could not model — then the upgrade is skipped, exactly as the
// from-scratch path skips it when its analyzer construction fails.
func (a *Admission) syncedAnalyzer(want []dbf.Demand, op structOp) *dbf.Analyzer {
	az := a.az
	cur := a.azDemands
	curAt := func(i int) dbf.Demand {
		if op.kind == opShrink && i >= op.idx {
			return cur[i+1]
		}
		return cur[i]
	}
	expectLen := len(want)
	if op.kind == opGrow {
		expectLen--
	} else if op.kind == opShrink {
		expectLen++
	}
	if az == nil || len(cur) != expectLen || az.Len() != expectLen {
		az = nil
	}
	if az != nil {
		switch op.kind {
		case opGrow:
			if az.Append(want[len(want)-1]) != nil {
				az = nil
			}
		case opShrink:
			if az.Remove(op.idx) != nil {
				az = nil
			}
		}
	}
	if az != nil {
		limit := len(want)
		if op.kind == opGrow {
			limit-- // the appended slot already holds want's tail
		}
		for i := 0; i < limit; i++ {
			if want[i] == curAt(i) {
				continue
			}
			if az.Swap(i, want[i]) != nil {
				az = nil
				break
			}
		}
	}
	if az == nil {
		fresh, err := dbf.NewAnalyzer(want)
		if err != nil {
			return nil
		}
		az = fresh
	}
	return az
}

// demandsFromCaches resolves every choice to its cached exact demand;
// nil when any choice lacks a valid demand model (which mirrors the
// from-scratch path's analyzer-construction failure).
func demandsFromCaches(choices []Choice, locals []dbf.Demand, levels [][]dbf.Demand) []dbf.Demand {
	out := make([]dbf.Demand, len(choices))
	for i, c := range choices {
		var d dbf.Demand
		if c.Offload {
			d = levels[i][c.Level]
		} else {
			d = locals[i]
		}
		if d == nil {
			return nil
		}
		out[i] = d
	}
	return out
}

// theorem3Cached evaluates the exact Theorem-3 test from the cached
// demand models, value-identical to theorem3Of (same constructors,
// same summation order, exact rational arithmetic throughout).
func theorem3Cached(choices []Choice, locals []dbf.Demand, levels [][]dbf.Demand) (*big.Rat, bool) {
	var off []dbf.Offloaded
	var loc []dbf.Sporadic
	for i, c := range choices {
		if c.Offload {
			o, ok := levels[i][c.Level].(dbf.Offloaded)
			if !ok {
				return big.NewRat(2, 1), false // invalid split: over-dense
			}
			off = append(off, o)
		} else {
			s, ok := locals[i].(dbf.Sporadic)
			if !ok {
				return big.NewRat(2, 1), false
			}
			loc = append(loc, s)
		}
	}
	return dbf.Theorem3(off, loc)
}
