package core

import (
	"errors"
	"math/big"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func ms(v int64) rtime.Duration { return rtime.FromMillis(v) }

// twoTaskSet builds the hand-analyzable system used in several tests:
//
//	τ1: C=30, D=T=100, G(0)=1; offload levels (R=20ms → 4), (R=60ms → 9)
//	    C1=5, C2=30 ⇒ w(20) = 35/80, w(60) = 35/40
//	τ2: C=30, D=T=100, G(0)=1; offload level (R=20ms → 6), same WCETs
//
// Capacity 1: both offloaded at R=20 costs 70/80 < 1 → benefit 10.
// τ1@60 + τ2 local costs 35/40+3/10 > 1 → infeasible. Optimum = 10.
func twoTaskSet() task.Set {
	mk := func(id int, levels []task.Level) *task.Task {
		return &task.Task{
			ID: id, Period: ms(100), Deadline: ms(100),
			LocalWCET: ms(30), Setup: ms(5), Compensation: ms(30),
			LocalBenefit: 1, Levels: levels,
		}
	}
	return task.Set{
		mk(1, []task.Level{
			{Response: ms(20), Benefit: 4},
			{Response: ms(60), Benefit: 9},
		}),
		mk(2, []task.Level{
			{Response: ms(20), Benefit: 6},
		}),
	}
}

func TestDecideOptimal(t *testing.T) {
	for _, solver := range []Solver{SolverDP, SolverBrute, SolverBnB} {
		d, err := Decide(twoTaskSet(), Options{Solver: solver})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if d.TotalExpected != 10 {
			t.Fatalf("%v: expected benefit %g, want 10 (choices %+v)", solver, d.TotalExpected, d.Choices)
		}
		if !d.Choices[0].Offload || d.Choices[0].Level != 0 {
			t.Fatalf("%v: τ1 choice %+v", solver, d.Choices[0])
		}
		if !d.Choices[1].Offload {
			t.Fatalf("%v: τ2 not offloaded", solver)
		}
		// Exact total: 35/80 + 35/80 = 7/8.
		if d.Theorem3Total.Cmp(big.NewRat(7, 8)) != 0 {
			t.Fatalf("%v: Theorem3Total = %v, want 7/8", solver, d.Theorem3Total)
		}
		if d.Repaired != 0 {
			t.Fatalf("%v: unexpected repairs", solver)
		}
		if d.OffloadedCount() != 2 {
			t.Fatalf("%v: offloaded %d", solver, d.OffloadedCount())
		}
	}
}

func TestDecideBudgets(t *testing.T) {
	d, err := Decide(twoTaskSet(), Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if d.Choices[0].Budget() != ms(20) || d.Choices[1].Budget() != ms(20) {
		t.Fatalf("budgets %v %v", d.Choices[0].Budget(), d.Choices[1].Budget())
	}
	local := Choice{Task: twoTaskSet()[0]}
	if local.Budget() != 0 {
		t.Error("local budget not 0")
	}
}

func TestDecideInfeasible(t *testing.T) {
	set := task.Set{
		{ID: 1, Period: ms(10), Deadline: ms(10), LocalWCET: ms(8), LocalBenefit: 1},
		{ID: 2, Period: ms(10), Deadline: ms(10), LocalWCET: ms(8), LocalBenefit: 1},
	}
	if _, err := Decide(set, Options{Solver: SolverDP}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestDecideValidation(t *testing.T) {
	if _, err := Decide(nil, Options{}); err == nil {
		t.Error("empty set accepted")
	}
	bad := task.Set{{ID: 1, Period: 0, Deadline: ms(1), LocalWCET: 1}}
	if _, err := Decide(bad, Options{}); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := Decide(twoTaskSet(), Options{Solver: Solver(9)}); err == nil {
		t.Error("unknown solver accepted")
	}
}

func TestDecideSkipsImpossibleLevels(t *testing.T) {
	set := twoTaskSet()
	// A level with budget beyond the deadline must be ignored, not
	// break the decision.
	set[0].Levels = append(set[0].Levels, task.Level{Response: ms(150), Benefit: 99})
	d, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if d.Choices[0].Offload && d.Choices[0].Level == 2 {
		t.Fatal("impossible level selected")
	}
	// An over-dense level (w > 1) is likewise ignored: R=96 leaves 4ms
	// for C1+C2=35ms.
	set = twoTaskSet()
	set[0].Levels = append(set[0].Levels, task.Level{Response: ms(96), Benefit: 99})
	d, err = Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if d.Choices[0].Offload && d.Choices[0].Level == 2 {
		t.Fatal("over-dense level selected")
	}
}

func TestSolverOrdering(t *testing.T) {
	// DP (≈optimal) ≥ HEU and ≥ greedy on the paper's random sets.
	rng := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		set, err := task.GenerateFigure3(rng.Fork(), task.DefaultFigure3Params())
		if err != nil {
			t.Fatal(err)
		}
		dp, err := Decide(set, Options{Solver: SolverDP})
		if err != nil {
			t.Fatal(err)
		}
		heu, err := Decide(set, Options{Solver: SolverHEU})
		if err != nil {
			t.Fatal(err)
		}
		if heu.TotalExpected > dp.TotalExpected+0.02*dp.TotalExpected {
			t.Fatalf("trial %d: HEU %g clearly beats DP %g", trial, heu.TotalExpected, dp.TotalExpected)
		}
		bnb, err := Decide(set, Options{Solver: SolverBnB})
		if err != nil {
			t.Fatal(err)
		}
		// BnB is exact: never below DP (whose grid can cost a sliver)
		// and never below HEU.
		if bnb.TotalExpected < dp.TotalExpected-1e-9 || bnb.TotalExpected < heu.TotalExpected-1e-9 {
			t.Fatalf("trial %d: BnB %g below DP %g or HEU %g", trial, bnb.TotalExpected, dp.TotalExpected, heu.TotalExpected)
		}
		one := big.NewRat(1, 1)
		if dp.Theorem3Total.Cmp(one) > 0 || heu.Theorem3Total.Cmp(one) > 0 || bnb.Theorem3Total.Cmp(one) > 0 {
			t.Fatalf("trial %d: decision violates exact test", trial)
		}
	}
}

// End-to-end: DP decision on a Figure-3 set simulated against the CDF
// server derived from the same benefit functions — no deadline misses,
// and the hit fractions approximate the chosen probabilities.
func TestDecisionSimulatesWithoutMisses(t *testing.T) {
	rng := stats.NewRNG(77)
	set, err := task.GenerateFigure3(rng.Fork(), task.DefaultFigure3Params())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if d.OffloadedCount() == 0 {
		t.Fatal("decision offloads nothing; test degenerate")
	}
	samplers := map[int]server.ResponseSampler{}
	for _, c := range d.Choices {
		if c.Offload {
			samplers[c.Task.ID] = benefitOf(c.Task)
		}
	}
	res, err := sched.Run(sched.Config{
		Assignments: d.Assignments(),
		Server:      server.NewCDF(rng.Fork(), samplers),
		Horizon:     rtime.FromSeconds(30),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d deadline misses", res.Misses)
	}
	// Aggregate hit fraction should track the mean chosen probability.
	var hits, offJobs, probSum float64
	var offTasks int
	for _, c := range d.Choices {
		if !c.Offload {
			continue
		}
		offTasks++
		probSum += c.Task.Levels[c.Level].Benefit
		st := res.PerTask[c.Task.ID]
		hits += float64(st.Hits)
		offJobs += float64(st.Finished)
	}
	wantFrac := probSum / float64(offTasks)
	gotFrac := hits / offJobs
	if gotFrac < wantFrac-0.08 || gotFrac > wantFrac+0.08 {
		t.Fatalf("hit fraction %g, decisions promised ≈%g", gotFrac, wantFrac)
	}
}

func TestPerturbSet(t *testing.T) {
	set := twoTaskSet()
	p, err := PerturbSet(set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Levels[0].Response != ms(30) || p[0].Levels[1].Response != ms(90) {
		t.Fatalf("perturbed responses %v %v", p[0].Levels[0].Response, p[0].Levels[1].Response)
	}
	// Originals untouched; benefits and WCETs preserved.
	if set[0].Levels[0].Response != ms(20) {
		t.Fatal("PerturbSet mutated input")
	}
	if p[0].Levels[0].Benefit != 4 || p[0].Setup != ms(5) {
		t.Fatal("perturbation changed benefit or WCET")
	}
	if _, err := PerturbSet(set, -1); err == nil {
		t.Error("x = -1 accepted")
	}
}

func TestRealizedBenefit(t *testing.T) {
	set := twoTaskSet()
	d, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	// Against the true set, realized == expected.
	got, err := RealizedBenefit(d, set)
	if err != nil {
		t.Fatal(err)
	}
	if got != d.TotalExpected {
		t.Fatalf("realized %g, expected %g", got, d.TotalExpected)
	}
	// Decide on an optimistic (x = −0.5) view: budgets shrink, the true
	// function at those small budgets yields less than promised.
	opt, err := PerturbSet(set, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	dOpt, err := Decide(opt, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	realized, err := RealizedBenefit(dOpt, set)
	if err != nil {
		t.Fatal(err)
	}
	if realized > dOpt.TotalExpected {
		t.Fatalf("optimistic decision realized %g above its own claim %g", realized, dOpt.TotalExpected)
	}
	if realized > got {
		t.Fatalf("optimistic decision realized %g above true optimum %g", realized, got)
	}
	// Missing task in true set.
	if _, err := RealizedBenefit(d, set[:1]); err == nil {
		t.Error("missing task accepted")
	}
}

func TestSolverString(t *testing.T) {
	for s, want := range map[Solver]string{
		SolverDP: "dp", SolverHEU: "heu-oe", SolverBrute: "brute-force", SolverGreedy: "greedy",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
	if Solver(9).String() == "" {
		t.Error("unknown solver name empty")
	}
}
