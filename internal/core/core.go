// Package core implements the paper's primary contribution: the
// computation-offloading mechanism that exploits timing unreliable
// components in a hard real-time system (Figure 1's software
// architecture).
//
// The pipeline is:
//
//  1. The Benefit and Response Time Estimator (estimator.go) probes the
//     unreliable server and discretizes per-task benefit functions
//     Gi(ri).
//  2. The Offloading Decision Manager (this file) reduces the choice of
//     which tasks to offload — and with which estimated worst-case
//     response time Ri — to a multiple-choice knapsack instance whose
//     weights are the Theorem-3 terms (§5.2), solves it with the DP or
//     HEU-OE solver, and verifies the selected configuration against
//     the exact rational Theorem-3 test (repairing the rare float
//     rounding slip by downgrading choices).
//  3. The Local Compensation Manager is realized by the scheduler
//     (package sched): the setup sub-job gets the proportional split
//     deadline Di,1, a timer fires at Ri, and the compensation runs
//     with the job's original absolute deadline.
//
// The package also provides the online Admission manager and the
// benefit-function perturbation used by the paper's estimation-error
// study (§6.2).
package core

import (
	"errors"
	"fmt"
	"math/big"

	"rtoffload/internal/benefit"
	"rtoffload/internal/dbf"
	"rtoffload/internal/fleet"
	"rtoffload/internal/mckp"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/task"
)

// Solver selects the MCKP algorithm used by Decide.
type Solver int

const (
	// SolverDP is the pseudo-polynomial dynamic program the paper
	// adopts from Dudzinski & Walukiewicz (optimal up to capacity-grid
	// quantization).
	SolverDP Solver = iota
	// SolverHEU is the HEU-OE greedy heuristic from Khan's thesis.
	SolverHEU
	// SolverBrute exhaustively enumerates assignments (small systems).
	SolverBrute
	// SolverGreedy is a naive profit-greedy baseline for ablations.
	SolverGreedy
	// SolverBnB is exact branch-and-bound with LP pruning — no capacity
	// quantization, so it resolves hairline-fit instances the DP grid
	// rounds away.
	SolverBnB
	// SolverCore is the Dudzinski–Walukiewicz core method (mckp.Solver):
	// exact like SolverBnB, but with LP-dual reduced-cost fixing and a
	// Pareto-dominance sweep over the residual core, built for
	// fleet-sized choice sets and incremental re-solves. Admission
	// keeps one persistent mckp.Solver warm across re-decisions.
	SolverCore
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case SolverDP:
		return "dp"
	case SolverHEU:
		return "heu-oe"
	case SolverBrute:
		return "brute-force"
	case SolverGreedy:
		return "greedy"
	case SolverBnB:
		return "branch-and-bound"
	case SolverCore:
		return "core"
	case SolverServerFaster:
		return "server-faster"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Options configures Decide.
type Options struct {
	Solver Solver
	// DPResolution is the capacity grid of the DP solver
	// (0 = mckp.DefaultDPResolution).
	DPResolution int
	// ExactUpgrade post-processes every decision with ImproveWithExact:
	// the exact QPA feasibility oracle (via the incremental
	// dbf.Analyzer) upgrades offloading levels beyond what Theorem 3's
	// linear bound admits. Decisions then carry ExactVerified and may
	// exceed 1 on the Theorem-3 scale. Online users (Admission) get the
	// upgrade on every Add/Remove re-decision.
	ExactUpgrade bool
	// Fleet, when non-empty, expands every task's choice set across
	// the fleet's servers: each probed budget becomes one
	// (server, budget) point per server, with server-scaled budgets,
	// reliability-discounted benefits, and per-server capacity pools
	// enforced by an exact post-solve repair (see fleet.go). An empty
	// Fleet runs the paper's single-server path untouched.
	Fleet fleet.Fleet
}

// Choice is the decision for one task.
type Choice struct {
	Task *task.Task
	// Offload and Level mirror sched.Assignment: Level indexes
	// Task.Levels when Offload is true.
	Offload bool
	Level   int
	// Expected is the weighted benefit claimed by the decision:
	// weight·Gi(Ri) for offloading, weight·Gi(0) for local execution.
	Expected float64
}

// Budget returns the chosen estimated worst-case response time Ri
// (0 for local execution).
func (c Choice) Budget() rtime.Duration {
	if !c.Offload {
		return 0
	}
	return c.Task.Levels[c.Level].Response
}

// Decision is a complete offloading configuration.
type Decision struct {
	Choices []Choice
	// TotalExpected is Σ weight·Gi over the chosen points — the MCKP
	// objective (5a).
	TotalExpected float64
	// Theorem3Total is the exact value of the left-hand side of the
	// schedulability test (3); ≤ 1 by construction.
	Theorem3Total *big.Rat
	Solver        Solver
	// Repaired counts choices downgraded to local execution by the
	// exact-feasibility repair pass (normally 0).
	Repaired int
	// ExactVerified marks decisions whose feasibility is certified by
	// the exact processor-demand test (QPA) rather than Theorem 3 —
	// such decisions may legitimately have Theorem3Total > 1. See
	// ImproveWithExact.
	ExactVerified bool
	// ServerLoads is the exact per-pool capacity account of a fleet
	// decision (one entry per fleet server, then per group), certified
	// within capacity by the repair pass. Nil for single-server
	// decisions — its presence marks the decision as fleet-expanded.
	ServerLoads []fleet.Load
}

// Assignments converts the decision into scheduler assignments. Fleet
// decisions carry fleet-expanded tasks whose cross-server point sets
// intentionally violate Task.Validate's benefit monotonicity; each is
// pruned here to its single chosen point (or no points for local
// execution) so the scheduler's validation sees an ordinary task
// routed to the chosen server.
func (d *Decision) Assignments() []sched.Assignment {
	out := make([]sched.Assignment, len(d.Choices))
	for i, c := range d.Choices {
		t, lvl := c.Task, c.Level
		if d.ServerLoads != nil {
			p := *t
			if c.Offload {
				p.Levels = []task.Level{t.Levels[c.Level]}
				lvl = 0
			} else {
				p.Levels = nil
			}
			t = &p
		}
		out[i] = sched.Assignment{Task: t, Offload: c.Offload, Level: lvl}
	}
	return out
}

// OffloadedCount reports how many tasks the decision offloads.
func (d *Decision) OffloadedCount() int {
	n := 0
	for _, c := range d.Choices {
		if c.Offload {
			n++
		}
	}
	return n
}

// ErrInfeasible reports that not even the all-local configuration
// passes the schedulability test.
var ErrInfeasible = errors.New("core: task set infeasible even with all-local execution")

// classMap records which (offload, level) each MCKP item index means.
type classMap struct {
	offload bool
	level   int
}

// ratOne is the Theorem-3 capacity bound. Cmp never mutates it.
var ratOne = big.NewRat(1, 1)

// taskCache is the per-task decision state that depends only on the
// task itself: its MCKP class, the item→(offload, level) map, and the
// exact demand models of every choice. Decide derives it per call; the
// online Admission manager caches one per admitted task so re-decisions
// skip the big.Rat weight arithmetic and demand construction entirely.
type taskCache struct {
	class mckp.Class
	cm    []classMap
	// local is the dbf.Sporadic demand of local execution (nil only
	// when the task cannot form a valid sporadic model, which Validate
	// excludes).
	local dbf.Demand
	// levels holds the candidate dbf.Offloaded demand per offloading
	// level; nil entries mark levels that cannot form a valid split
	// model and are never feasible. Unlike the MCKP items, over-dense
	// levels (w > 1) are present — the exact-upgrade pass may still
	// admit them.
	levels []dbf.Demand
}

// buildTaskCache constructs one task's MCKP class per §5.2 — item 0 is
// local execution (wi,1 = Ci/Di, profit weight·Gi(0)), plus one item
// per offloading level j with wi,j = (Ci,1+Ci,2)/(Di−ri,j) and profit
// weight·Gi(ri,j); levels whose budget leaves no room (ri,j ≥ Di or
// wi,j > 1) are excluded, as they can never satisfy Theorem 3 — along
// with the cached demand models of every choice.
func buildTaskCache(t *task.Task) taskCache {
	c := taskCache{class: mckp.Class{Label: t.Name}}
	localW, _ := t.Density().Float64() //rtlint:allow floatexact -- exact→float handoff: MCKP weights are float64 by design; feasibility is re-certified exactly
	c.class.Items = append(c.class.Items, mckp.Item{Weight: localW, Profit: t.EffectiveWeight() * t.LocalBenefit})
	c.cm = append(c.cm, classMap{offload: false})
	if s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period); err == nil {
		c.local = s
	}
	c.levels = make([]dbf.Demand, len(t.Levels))
	for j := range t.Levels {
		o, errSplit := dbf.NewOffloaded(t.SetupAt(j), t.SecondPhaseAt(j), t.Deadline, t.Period, t.Levels[j].Response)
		if errSplit == nil {
			c.levels[j] = o
		}
		w, err := t.OffloadWeight(j)
		if err != nil || errSplit != nil {
			continue // budget ≥ deadline or invalid split: never feasible
		}
		if w.Cmp(ratOne) > 0 {
			continue // over-dense for Theorem 3
		}
		wf, _ := w.Float64() //rtlint:allow floatexact -- exact→float handoff: MCKP weights are float64 by design; feasibility is re-certified exactly
		c.class.Items = append(c.class.Items, mckp.Item{Weight: wf, Profit: t.EffectiveWeight() * t.Levels[j].Benefit})
		c.cm = append(c.cm, classMap{offload: true, level: j})
	}
	return c
}

// buildInstance constructs the MCKP instance of §5.2 over the whole
// set (see buildTaskCache for the per-task reduction).
func buildInstance(set task.Set) (*mckp.Instance, [][]classMap, error) {
	in := &mckp.Instance{Capacity: 1}
	maps := make([][]classMap, len(set))
	for i, t := range set {
		tc := buildTaskCache(t)
		in.Classes = append(in.Classes, tc.class)
		maps[i] = tc.cm
	}
	return in, maps, nil
}

// Decide selects, for every task, local execution or an offloading
// level, maximizing total weighted benefit subject to the paper's
// schedulability test. The returned decision always satisfies the
// exact rational Theorem-3 test.
func Decide(set task.Set, opts Options) (*Decision, error) {
	if !opts.Fleet.Empty() {
		return decideFleet(set, opts)
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return nil, errors.New("core: empty task set")
	}
	in, maps, err := buildInstance(set)
	if err != nil {
		return nil, err
	}
	sol, err := solveMCKP(in, opts)
	if err != nil {
		return nil, err
	}
	d := assembleDecision(set, maps, sol, opts.Solver)
	if err := repairDecision(d, theorem3Of); err != nil {
		return nil, err
	}
	if opts.ExactUpgrade {
		return ImproveWithExact(d, set)
	}
	return d, nil
}

// solveMCKP runs the configured MCKP solver, mapping the solver's
// infeasibility to ErrInfeasible.
func solveMCKP(in *mckp.Instance, opts Options) (mckp.Solution, error) {
	var sol mckp.Solution
	var err error
	switch opts.Solver {
	case SolverDP:
		sol, err = mckp.SolveDP(in, opts.DPResolution)
	case SolverHEU:
		sol, err = mckp.SolveHEU(in)
	case SolverBrute:
		sol, err = mckp.SolveBruteForce(in)
	case SolverGreedy:
		sol, err = mckp.SolveGreedy(in)
	case SolverBnB:
		sol, err = mckp.SolveBnB(in)
	case SolverCore:
		var s *mckp.Solver
		if s, err = mckp.NewSolverFrom(in); err == nil {
			sol, err = s.Solve()
		}
	default:
		return sol, fmt.Errorf("core: unknown solver %d", int(opts.Solver))
	}
	if errors.Is(err, mckp.ErrInfeasible) {
		return sol, ErrInfeasible
	}
	return sol, err
}

// assembleDecision translates a solver solution into a Decision,
// accumulating TotalExpected in set order (float accumulation order is
// part of the decision's bit-identity contract between the from-scratch
// and incremental paths).
func assembleDecision(set task.Set, maps [][]classMap, sol mckp.Solution, solver Solver) *Decision {
	d := &Decision{Solver: solver}
	for i, t := range set {
		cm := maps[i][sol.Choice[i]]
		ch := Choice{Task: t, Offload: cm.offload, Level: cm.level}
		if cm.offload {
			ch.Expected = t.EffectiveWeight() * t.Levels[cm.level].Benefit
		} else {
			ch.Expected = t.EffectiveWeight() * t.LocalBenefit
		}
		d.Choices = append(d.Choices, ch)
		d.TotalExpected += ch.Expected
	}
	return d
}

// repairDecision is the exact verification + repair pass: float
// accumulation in the solvers can, in principle, admit a configuration
// a hair over 1. Downgrade the offloaded choice with the smallest
// benefit loss until the exact test (evaluated by theorem3, which must
// agree with theorem3Of) passes.
func repairDecision(d *Decision, theorem3 func([]Choice) (*big.Rat, bool)) error {
	for {
		total, ok := theorem3(d.Choices)
		if ok {
			d.Theorem3Total = total
			return nil
		}
		idx := cheapestDowngrade(d.Choices)
		if idx < 0 {
			return ErrInfeasible
		}
		c := &d.Choices[idx]
		d.TotalExpected -= c.Expected
		c.Offload = false
		c.Level = 0
		c.Expected = c.Task.EffectiveWeight() * c.Task.LocalBenefit
		d.TotalExpected += c.Expected
		d.Repaired++
	}
}

// theorem3Of evaluates the exact test for a choice vector.
func theorem3Of(choices []Choice) (*big.Rat, bool) {
	var off []dbf.Offloaded
	var loc []dbf.Sporadic
	for _, c := range choices {
		t := c.Task
		if c.Offload {
			o, err := dbf.NewOffloaded(t.SetupAt(c.Level), t.SecondPhaseAt(c.Level),
				t.Deadline, t.Period, t.Levels[c.Level].Response)
			if err != nil {
				// Excluded in buildInstance; a failure here means the
				// choice is over-dense — report as infeasible.
				return big.NewRat(2, 1), false
			}
			off = append(off, o)
		} else {
			s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
			if err != nil {
				return big.NewRat(2, 1), false
			}
			loc = append(loc, s)
		}
	}
	return dbf.Theorem3(off, loc)
}

// cheapestDowngrade picks the offloaded choice whose switch to local
// costs the least expected benefit; −1 when nothing is offloaded.
func cheapestDowngrade(choices []Choice) int {
	best, bestLoss := -1, 0.0
	for i, c := range choices {
		if !c.Offload {
			continue
		}
		loss := c.Expected - c.Task.EffectiveWeight()*c.Task.LocalBenefit
		if best == -1 || loss < bestLoss { //rtlint:allow floatexact -- repair ordering over float benefits; the result is re-certified exactly
			best, bestLoss = i, loss
		}
	}
	return best
}

// PerturbSet applies the §6.2 estimation-accuracy ratio x to every
// task's benefit function: each level's response budget moves to
// (1+x)·ri,j while its benefit value is retained. The returned set is
// a deep copy; per-level WCET overrides and payloads are preserved.
func PerturbSet(set task.Set, x float64) (task.Set, error) {
	out := set.Clone()
	for _, t := range out {
		f := benefit.FromTask(t)
		g, err := f.Perturb(x)
		if err != nil {
			return nil, err
		}
		pts := g.OffloadPoints()
		for j := range t.Levels {
			t.Levels[j].Response = pts[j].R
		}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("core: perturbed task invalid: %w", err)
		}
	}
	return out, nil
}

// RealizedBenefit evaluates what a decision actually earns when the
// true benefit functions are given by trueSet (matching task IDs):
// an offloaded task earns the *true* Gi at its chosen budget — the
// probability-weighted value the system observes — while a local task
// earns Gi(0). This is the scoring rule of the paper's Figure 3.
func RealizedBenefit(d *Decision, trueSet task.Set) (float64, error) {
	total := 0.0
	for _, c := range d.Choices {
		t := trueSet.ByID(c.Task.ID)
		if t == nil {
			return 0, fmt.Errorf("core: task %d missing from true set", c.Task.ID)
		}
		f := benefit.FromTask(t)
		if c.Offload {
			total += t.EffectiveWeight() * f.At(c.Budget())
		} else {
			total += t.EffectiveWeight() * f.Local()
		}
	}
	return total, nil
}
