package core

import (
	"math/big"
	"testing"
	"testing/quick"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// Fuzz-style property: for arbitrary random task sets (varied sizes,
// utilizations, level counts, response ranges, weights, occasional
// server bounds and constrained deadlines) every solver either reports
// infeasibility or returns a decision that passes the exact Theorem-3
// test, preserves one-choice-per-task, and never invents levels.
func TestDecideFuzzProperty(t *testing.T) {
	one := big.NewRat(1, 1)
	check := func(seed uint64, nRaw, qRaw, utilRaw, solverRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := int(nRaw%12) + 1
		q := int(qRaw % 6)
		util := float64(utilRaw%95)/100 + 0.02
		solver := []Solver{SolverDP, SolverHEU, SolverGreedy}[solverRaw%3]

		set := make(task.Set, 0, n)
		utils := rng.UUniFast(n, util)
		for i := 0; i < n; i++ {
			period := rtime.FromMillis(rng.UniformInt(10, 1000))
			deadline := period
			if rng.Bool(0.3) { // constrained deadline
				deadline = period/2 + rtime.Duration(rng.Int64N(int64(period/2)))
			}
			c := rtime.Duration(utils[i] * float64(deadline))
			if c <= 0 {
				c = 1
			}
			tk := &task.Task{
				ID: i, Period: period, Deadline: deadline,
				LocalWCET: c, Setup: c/3 + 1, Compensation: c,
				PostProcess:  c / 4,
				LocalBenefit: rng.Uniform(0, 5),
				Weight:       rng.Uniform(0.1, 4),
			}
			if rng.Bool(0.3) {
				tk.ServerWCRT = rtime.Duration(rng.Int64N(int64(deadline))) + 1
				if tk.PostProcess <= 0 {
					tk.PostProcess = 1
				}
			}
			prevR := rtime.Duration(0)
			prevB := tk.LocalBenefit
			for j := 0; j < q; j++ {
				r := prevR + rtime.Duration(rng.Int64N(int64(deadline)))/rtime.Duration(q+1) + 1
				b := prevB + rng.Uniform(0, 3)
				tk.Levels = append(tk.Levels, task.Level{Response: r, Benefit: b})
				prevR, prevB = r, b
			}
			if err := tk.Validate(); err != nil {
				// Generator glitch (e.g. C > D after rounding): skip task.
				continue
			}
			set = append(set, tk)
		}
		if len(set) == 0 {
			return true
		}
		dec, err := Decide(set, Options{Solver: solver})
		if err != nil {
			return err == ErrInfeasible || set.Validate() != nil
		}
		if len(dec.Choices) != len(set) {
			return false
		}
		for i, c := range dec.Choices {
			if c.Task != set[i] {
				return false
			}
			if c.Offload && (c.Level < 0 || c.Level >= len(c.Task.Levels)) {
				return false
			}
		}
		if dec.Theorem3Total.Cmp(one) > 0 {
			return false
		}
		total, ok := theorem3Of(dec.Choices)
		return ok && total.Cmp(dec.Theorem3Total) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Admission fuzz: any sequence of adds/removes leaves the manager in a
// consistent, feasible state.
func TestAdmissionFuzzProperty(t *testing.T) {
	check := func(seed uint64, ops uint8) bool {
		rng := stats.NewRNG(seed)
		a := NewAdmission(Options{Solver: SolverHEU})
		live := map[int]bool{}
		for op := 0; op < int(ops%24)+4; op++ {
			if rng.Bool(0.6) {
				id := rng.IntN(10)
				period := rtime.FromMillis(rng.UniformInt(20, 500))
				c := rtime.Duration(rng.Int64N(int64(period/2))) + 1
				tk := &task.Task{
					ID: id, Period: period, Deadline: period,
					LocalWCET: c, Setup: c/4 + 1, Compensation: c,
					LocalBenefit: 1,
					Levels:       []task.Level{{Response: period / 4, Benefit: 2}},
				}
				if err := a.Add(tk); err == nil {
					if live[id] {
						return false // duplicate admitted
					}
					live[id] = true
				}
			} else {
				id := rng.IntN(10)
				ok, err := a.Remove(id)
				if err != nil {
					return false
				}
				if ok != live[id] {
					return false
				}
				delete(live, id)
			}
			// Invariants after every operation.
			if len(a.Tasks()) != len(live) {
				return false
			}
			if dec := a.Decision(); dec != nil {
				if len(dec.Choices) != len(live) {
					return false
				}
				if dec.Theorem3Total.Cmp(big.NewRat(1, 1)) > 0 {
					return false
				}
			} else if len(live) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
