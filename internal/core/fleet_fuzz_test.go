package core

import (
	"testing"

	"rtoffload/internal/fleet"
	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
)

// fuzzFleet derives a deterministic random fleet from the fuzz input:
// 1–3 servers with random scales, reliabilities, and capacity pools,
// occasionally coupled through a shared group.
func fuzzFleet(rng *stats.RNG, nRaw uint8) fleet.Fleet {
	n := int(nRaw)%3 + 1
	var f fleet.Fleet
	grouped := rng.Bool(0.5)
	if grouped {
		f.Groups = []fleet.Group{{ID: "g", CapNum: int64(rng.IntN(3) + 1), CapDen: 4}}
	}
	names := []string{"alpha", "beta", "gamma"}
	for i := 0; i < n; i++ {
		s := fleet.Server{ID: names[i]}
		if rng.Bool(0.5) {
			s.ScaleNum, s.ScaleDen = int64(rng.IntN(3)+1), int64(rng.IntN(3)+1)
		}
		if rng.Bool(0.4) {
			s.Extra = rtime.FromMillis(int64(rng.IntN(5)))
		}
		if rng.Bool(0.4) {
			s.Reliability = rng.Uniform(0.5, 1)
		}
		if rng.Bool(0.5) {
			s.CapNum, s.CapDen = int64(rng.IntN(4)+1), 8
		}
		if grouped && rng.Bool(0.6) {
			s.Group = "g"
		}
		f.Servers = append(f.Servers, s)
	}
	return f
}

// FuzzFleetDecide is the fleet decision fuzz target. For every input
// it derives a random task system and fleet, then checks:
//
//   - cross-solver agreement: every solver's fleet decision satisfies
//     the exact Theorem-3 bound and every capacity pool, and the exact
//     solvers (core, BnB) agree on the pre-repair objective;
//   - the single-server oracle: a 1-server neutral fleet stays
//     bit-identical to the plain single-server Decide;
//   - warm/cold bit-identity under server churn: an Admission churned
//     through adds, fleet re-expanding updates, and removes matches a
//     from-scratch fleet Decide after every commit.
func FuzzFleetDecide(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4), uint8(3))
	f.Add(uint64(7), uint8(1), uint8(2), uint8(0))
	f.Add(uint64(42), uint8(3), uint8(7), uint8(6))
	f.Add(uint64(99), uint8(2), uint8(5), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, fleetRaw, nRaw, churnRaw uint8) {
		rng := stats.NewRNG(stats.DeriveSeed(seed, 501))
		fl := fuzzFleet(rng, fleetRaw)
		if err := fl.Validate(); err != nil {
			t.Fatalf("generated fleet invalid: %v", err)
		}
		set := randomFleetSet(rng, int(nRaw)%7+2)

		// Cross-solver agreement on the fleet instance.
		var coreDec, bnbDec *Decision
		for _, sv := range []Solver{SolverCore, SolverBnB, SolverDP, SolverHEU} {
			d, err := Decide(set, Options{Solver: sv, Fleet: fl})
			if err != nil {
				continue // infeasible for this solver's grid: nothing to check
			}
			if d.Theorem3Total.Cmp(ratOne) > 0 {
				t.Fatalf("solver %v: fleet decision exceeds Theorem 3: %v", sv, d.Theorem3Total)
			}
			if over := fleet.FirstOver(d.ServerLoads); over >= 0 {
				t.Fatalf("solver %v: pool %q over capacity", sv, d.ServerLoads[over].Pool)
			}
			for i, a := range d.Assignments() {
				if err := a.Validate(); err != nil {
					t.Fatalf("solver %v: assignment %d invalid: %v", sv, i, err)
				}
			}
			switch sv {
			case SolverCore:
				coreDec = d
			case SolverBnB:
				bnbDec = d
			}
		}
		if coreDec != nil && bnbDec != nil && coreDec.Repaired == 0 && bnbDec.Repaired == 0 {
			// Unrepaired decisions carry the solvers' raw optima; the
			// exact solvers must agree on the objective.
			diff := coreDec.TotalExpected - bnbDec.TotalExpected
			if diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("exact solvers disagree: core %v vs bnb %v",
					coreDec.TotalExpected, bnbDec.TotalExpected)
			}
		}

		// Single-server oracle on the same system.
		plain, plainErr := Decide(set, Options{Solver: SolverCore})
		solo, soloErr := Decide(set, Options{Solver: SolverCore, Fleet: soloFleet("solo")})
		if (plainErr == nil) != (soloErr == nil) {
			t.Fatalf("oracle error mismatch: %v vs %v", plainErr, soloErr)
		}
		if plainErr == nil {
			requireSameDecision(t, solo, plain, "fuzz single-server oracle")
		}

		// Warm/cold bit-identity under server churn.
		churn := int(churnRaw)%15 + 5
		runAdmissionChurnDifferential(t, Options{Solver: SolverCore, Fleet: fl}, seed, churn)
	})
}
