package core

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// schedRun wires a decision into the simulator (shared test helper).
func schedRun(d *Decision, srv server.Server, horizon rtime.Duration) (*sched.Result, error) {
	return sched.Run(sched.Config{
		Assignments: d.Assignments(),
		Server:      srv,
		Horizon:     horizon,
	})
}

func heavyLocalTask(id int, c, period rtime.Duration) *task.Task {
	return &task.Task{ID: id, Period: period, Deadline: period, LocalWCET: c, LocalBenefit: 1}
}

func TestAdmissionAddRemove(t *testing.T) {
	a := NewAdmission(Options{Solver: SolverDP})
	if a.Decision() != nil {
		t.Fatal("decision before any Add")
	}
	set := twoTaskSet()
	if err := a.Add(set[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(set[1]); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Tasks()); got != 2 {
		t.Fatalf("%d tasks", got)
	}
	// With both admitted, the optimum offloads both (see twoTaskSet).
	if a.Decision().TotalExpected != 10 {
		t.Fatalf("expected benefit %g", a.Decision().TotalExpected)
	}
	ok, err := a.Remove(1)
	if err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	if len(a.Tasks()) != 1 || a.Tasks()[0].ID != 2 {
		t.Fatalf("tasks after remove: %v", a.Tasks())
	}
	ok, err = a.Remove(99)
	if err != nil || ok {
		t.Fatalf("Remove(99): %v %v", ok, err)
	}
	// Removing the last task clears the decision.
	if _, err := a.Remove(2); err != nil {
		t.Fatal(err)
	}
	if a.Decision() != nil || len(a.Tasks()) != 0 {
		t.Fatal("state not cleared")
	}
}

func TestAdmissionRejectsOverload(t *testing.T) {
	a := NewAdmission(Options{Solver: SolverDP})
	if err := a.Add(heavyLocalTask(1, ms(60), ms(100))); err != nil {
		t.Fatal(err)
	}
	before := a.Decision()
	// A second task at 60 % utilization cannot fit.
	if err := a.Add(heavyLocalTask(2, ms(60), ms(100))); err == nil {
		t.Fatal("overload admitted")
	}
	// State unchanged after rejection.
	if len(a.Tasks()) != 1 || a.Decision() != before {
		t.Fatal("rejection mutated state")
	}
	// Duplicate and nil rejections.
	if err := a.Add(heavyLocalTask(1, ms(1), ms(100))); err == nil {
		t.Fatal("duplicate ID admitted")
	}
	if err := a.Add(nil); err == nil {
		t.Fatal("nil admitted")
	}
}

func TestAdmissionFreesCapacityOnRemove(t *testing.T) {
	// τA occupies most capacity; while present, τB can only run a cheap
	// configuration. After removing τA, re-decision should offload τB
	// at a better level.
	a := NewAdmission(Options{Solver: SolverDP})
	tb := &task.Task{
		ID: 2, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(10), Setup: ms(5), Compensation: ms(10),
		LocalBenefit: 1,
		Levels: []task.Level{
			{Response: ms(20), Benefit: 2},  // w = 15/80
			{Response: ms(80), Benefit: 50}, // w = 15/20 = 0.75
		},
	}
	if err := a.Add(heavyLocalTask(1, ms(70), ms(100))); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(tb); err != nil {
		t.Fatal(err)
	}
	ch := a.Decision().Choices
	for _, c := range ch {
		if c.Task.ID == 2 && c.Offload && c.Level == 1 {
			t.Fatal("high level chosen despite heavy co-runner")
		}
	}
	if _, err := a.Remove(1); err != nil {
		t.Fatal(err)
	}
	got := a.Decision().Choices[0]
	if !got.Offload || got.Level != 1 {
		t.Fatalf("after removal choice %+v, want level 1", got)
	}
}
