package core

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func adaptiveSet() task.Set {
	mk := func(id int) *task.Task {
		return &task.Task{
			ID: id, Period: ms(200), Deadline: ms(200),
			LocalWCET: ms(40), Setup: ms(3), Compensation: ms(40),
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(20), Benefit: 6, PayloadBytes: 1000},
				{Response: ms(60), Benefit: 6.5, PayloadBytes: 1000},
			},
		}
	}
	return task.Set{mk(1), mk(2)}
}

func adaptiveCfg() AdaptiveConfig {
	return AdaptiveConfig{
		Epoch:  rtime.FromSeconds(2),
		Epochs: 6,
		// The probe burst must be short relative to the server's load
		// regimes, or every estimate sees a mixture instead of the
		// current regime: 12 probes × 5ms × 4 level-batches = 240ms.
		Estimator: EstimatorConfig{
			Probes: 12, Spacing: ms(5), Quantile: 0.9,
		},
		Solver: SolverDP,
	}
}

func TestAdaptiveRunValidation(t *testing.T) {
	set := adaptiveSet()
	rng := stats.NewRNG(1)
	srv := server.Fixed{Latency: ms(5)}
	bad := adaptiveCfg()
	bad.Epoch = 0
	if _, err := AdaptiveRun(set, srv, bad, rng); err == nil {
		t.Error("zero epoch accepted")
	}
	bad = adaptiveCfg()
	bad.Epochs = 0
	if _, err := AdaptiveRun(set, srv, bad, rng); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := AdaptiveRun(set, srv, adaptiveCfg(), nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := AdaptiveRun(task.Set{{}}, srv, adaptiveCfg(), rng); err == nil {
		t.Error("invalid set accepted")
	}
}

func TestAdaptiveStationaryServer(t *testing.T) {
	set := adaptiveSet()
	res, err := AdaptiveRun(set, server.Fixed{Latency: ms(8)}, adaptiveCfg(), stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("%d epochs", len(res))
	}
	for _, er := range res {
		if er.Sim.Misses != 0 {
			t.Fatalf("epoch %d: %d misses", er.Epoch, er.Sim.Misses)
		}
		// Deterministic 8ms server: estimated budgets ≈ 8ms; every
		// offloaded job hits.
		for _, c := range er.Decision.Choices {
			if !c.Offload {
				t.Fatalf("epoch %d: task %d not offloaded", er.Epoch, c.Task.ID)
			}
			if c.Budget() < ms(8) || c.Budget() > ms(10) {
				t.Fatalf("epoch %d: budget %v far from server latency", er.Epoch, c.Budget())
			}
		}
		for _, st := range er.Sim.PerTask {
			if st.Compensations != 0 {
				t.Fatalf("epoch %d: compensations on a deterministic fast server", er.Epoch)
			}
		}
	}
}

// On a bursty Gilbert server, adaptation tracks the regime: epochs
// probed during bad bursts get bigger budgets (or fall back to local),
// so the adaptive run has strictly fewer compensations than freezing
// the first epoch's decision for the whole horizon.
func TestAdaptiveTracksBurstyServer(t *testing.T) {
	set := adaptiveSet()
	gcfg := server.GilbertConfig{
		GoodDuration: rtime.FromSeconds(4), BadDuration: rtime.FromSeconds(4),
		GoodLatency: ms(8), BadLatency: ms(120),
		Sigma: 0.1,
	}
	mkServer := func() server.Server {
		g, err := server.NewGilbert(stats.NewRNG(33), gcfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cfg := adaptiveCfg()
	cfg.Epochs = 10

	adaptive, err := AdaptiveRun(set, mkServer(), cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	var adComp, adHits int
	var adBenefit float64
	for _, er := range adaptive {
		if er.Sim.Misses != 0 {
			t.Fatalf("adaptive epoch %d missed deadlines", er.Epoch)
		}
		for _, st := range er.Sim.PerTask {
			adComp += st.Compensations
			adHits += st.Hits
		}
		adBenefit += er.Sim.TotalBenefit
	}

	// Frozen baseline: first-epoch estimation, one decision, same total
	// horizon against an identical server instance.
	frozenSrv := mkServer()
	frozen := set.Clone()
	if err := EstimateBudgets(frozenSrv, frozen, cfg.Estimator); err != nil {
		t.Fatal(err)
	}
	dec, err := Decide(frozen, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      frozenSrv,
		Horizon:     cfg.Epoch * rtime.Duration(cfg.Epochs),
	})
	if err != nil {
		t.Fatal(err)
	}
	var frComp, frHits int
	for _, st := range sim.PerTask {
		frComp += st.Compensations
		frHits += st.Hits
	}
	t.Logf("adaptive: hits %d comps %d benefit %.0f; frozen: hits %d comps %d benefit %.0f",
		adHits, adComp, adBenefit, frHits, frComp, sim.TotalBenefit)
	if sim.Misses != 0 {
		t.Fatalf("frozen run missed deadlines")
	}
	if adHits == 0 || frComp == 0 {
		t.Fatalf("degenerate scenario: adaptive hits %d, frozen comps %d", adHits, frComp)
	}
	if adBenefit <= sim.TotalBenefit {
		t.Fatalf("adaptation earned no benefit: %g vs frozen %g", adBenefit, sim.TotalBenefit)
	}
}
