package core

import (
	"errors"
	"math/big"

	"rtoffload/internal/fleet"
	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

// This file generalizes the Offloading Decision Manager to a fleet of
// timing-unreliable servers (Options.Fleet). The pipeline is the
// paper's, run over the fleet-expanded choice sets:
//
//  1. fleet.ExpandSet turns every probed budget into one
//     (server, budget) point per server — server-scaled budgets,
//     reliability-discounted benefits, ServerID routing.
//  2. The MCKP solvers and the exact Theorem-3 repair run unchanged
//     over the expanded classes (a point is just a level).
//  3. A capacity repair pass then enforces the per-server and
//     per-group occupancy pools exactly: over-capacity pools are
//     drained by rerouting choices to alternative points that keep
//     Theorem 3 satisfied, falling back to downgrading the
//     cheapest-loss choice to local execution.
//  4. With ExactUpgrade, the QPA upgrade runs with a capacity guard so
//     upgrades never push a pool over its cap.
//
// A 1-server neutral fleet reproduces the single-server pipeline
// bit-for-bit (the expansion is verbatim and the capacity pass finds
// nothing to do) — fleet_diff_test.go proves this differentially.

// decideFleet is Decide's fleet path: expand, solve, repair Theorem 3,
// repair capacity, optionally exact-upgrade under the capacity guard.
func decideFleet(set task.Set, opts Options) (*Decision, error) {
	if err := opts.Fleet.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return nil, errors.New("core: empty task set")
	}
	derived, err := opts.Fleet.ExpandSet(set)
	if err != nil {
		return nil, err
	}
	in, maps, err := buildInstance(derived)
	if err != nil {
		return nil, err
	}
	sol, err := solveMCKP(in, opts)
	if err != nil {
		return nil, err
	}
	d := assembleDecision(derived, maps, sol, opts.Solver)
	if err := repairFleetDecision(d, opts.Fleet, theorem3Of); err != nil {
		return nil, err
	}
	if !opts.ExactUpgrade {
		return d, nil
	}
	// Mirror of ImproveWithExact, minus its set re-validation (expanded
	// tasks intentionally break benefit monotonicity) and plus the
	// capacity guard. The admission path in redecide must stay
	// step-identical to this sequence.
	out := &Decision{
		Choices:       append([]Choice(nil), d.Choices...),
		TotalExpected: d.TotalExpected,
		Solver:        d.Solver,
		Repaired:      d.Repaired,
		ExactVerified: true,
	}
	if az, levelDemands, err := newUpgradeState(out.Choices); err == nil {
		improveLoop(out, az, levelDemands, capacityGuard(opts.Fleet))
	}
	total, _ := theorem3Of(out.Choices)
	out.Theorem3Total = total
	out.ServerLoads = decisionLoads(out.Choices, opts.Fleet)
	return out, nil
}

// decisionLoads folds the decision's offloaded choices into the
// fleet's capacity pools: each choice contributes its exact occupancy
// Ri/Ti and Theorem-3 weight to the server it routes to (and to that
// server's group).
func decisionLoads(choices []Choice, f fleet.Fleet) []fleet.Load {
	us := make([]fleet.Usage, 0, len(choices))
	for _, c := range choices {
		if !c.Offload {
			continue
		}
		t := c.Task
		w, err := t.OffloadWeight(c.Level)
		if err != nil {
			w = new(big.Rat) // unreachable for certified choices
		}
		us = append(us, fleet.Usage{
			Server:    t.Levels[c.Level].ServerID,
			Occupancy: rtime.Ratio(t.Levels[c.Level].Response, t.Period),
			Weight:    w,
		})
	}
	return f.Accumulate(us)
}

// repairFleetDecision is the fleet decision's combined exact repair:
// first the Theorem-3 repair (identical to the single-server pass),
// then the capacity pools. While some pool is over capacity, the pass
// reroutes the cheapest-loss choice off the violated pool onto an
// alternative (server, budget) point — accepted only when the exact
// Theorem-3 sum stays ≤ 1, every within-capacity pool stays within
// capacity, and the violated pool's occupancy strictly decreases —
// and, when no reroute qualifies, downgrades the cheapest-loss choice
// on the violated pool to local execution and re-certifies Theorem 3.
//
// Termination: a pool that is within capacity never goes over again
// (reroute targets are checked, downgrades only remove load), so the
// set of violated pools only shrinks; each reroute strictly drains the
// first violated pool and lands the task on a pool that stays
// satisfied, and each downgrade strictly decreases the offloaded
// count. The pass is deterministic — candidates are ordered by benefit
// loss with index tie-breaks — which is what keeps the incremental
// admission path bit-identical to a from-scratch Decide.
func repairFleetDecision(d *Decision, f fleet.Fleet, theorem3 func([]Choice) (*big.Rat, bool)) error {
	if err := repairDecision(d, theorem3); err != nil {
		return err
	}
	for {
		loads := decisionLoads(d.Choices, f)
		oi := fleet.FirstOver(loads)
		if oi < 0 {
			d.ServerLoads = loads
			return nil
		}
		if rerouteCheapest(d, f, loads, oi) {
			continue
		}
		idx := cheapestDowngradeIn(d.Choices, f, loads[oi])
		if idx < 0 {
			return ErrInfeasible
		}
		c := &d.Choices[idx]
		d.TotalExpected -= c.Expected
		c.Offload = false
		c.Level = 0
		c.Expected = c.Task.EffectiveWeight() * c.Task.LocalBenefit
		d.TotalExpected += c.Expected
		d.Repaired++
		if err := repairDecision(d, theorem3); err != nil {
			return err
		}
	}
}

// contributes reports whether choice c (offloaded) routes load into
// the given pool.
func contributes(f fleet.Fleet, c Choice, pool fleet.Load) bool {
	si := f.ServerIndex(c.Task.Levels[c.Level].ServerID)
	if si < 0 {
		return false
	}
	if pool.Server {
		return f.Servers[si].ID == pool.Pool
	}
	return f.Servers[si].Group == pool.Pool
}

// rerouteCheapest moves one choice off the violated pool loads[oi]
// onto the alternative point with the smallest expected-benefit loss
// (ties: lower task index, then lower point index). It updates the
// decision's objective and exact Theorem-3 total in place and reports
// whether a qualifying reroute existed.
func rerouteCheapest(d *Decision, f fleet.Fleet, loads []fleet.Load, oi int) bool {
	bestIdx, bestLv := -1, 0
	bestLoss := 0.0
	var bestW *big.Rat
	for i, c := range d.Choices {
		if !c.Offload || !contributes(f, c, loads[oi]) {
			continue
		}
		t := c.Task
		wOld, err := t.OffloadWeight(c.Level)
		if err != nil {
			continue
		}
		for lv := range t.Levels {
			if lv == c.Level {
				continue
			}
			wNew, err := t.OffloadWeight(lv)
			if err != nil {
				continue
			}
			if _, err := demandOf(Choice{Task: t, Offload: true, Level: lv}); err != nil {
				continue // no valid split model: theorem3 would reject it
			}
			total := new(big.Rat).Sub(d.Theorem3Total, wOld)
			total.Add(total, wNew)
			if total.Cmp(ratOne) > 0 {
				continue
			}
			if !moveKeepsPools(d, f, loads, oi, i, lv) {
				continue
			}
			loss := c.Expected - t.EffectiveWeight()*t.Levels[lv].Benefit
			if bestIdx == -1 || loss < bestLoss {
				bestIdx, bestLv, bestLoss, bestW = i, lv, loss, total
			}
		}
	}
	if bestIdx < 0 {
		return false
	}
	c := &d.Choices[bestIdx]
	d.TotalExpected -= c.Expected
	c.Level = bestLv
	c.Expected = c.Task.EffectiveWeight() * c.Task.Levels[bestLv].Benefit
	d.TotalExpected += c.Expected
	// Exact incremental update: big.Rat keeps the sum normalized, so
	// the value matches a from-scratch dbf.Theorem3 evaluation.
	d.Theorem3Total = bestW
	return true
}

// moveKeepsPools simulates rerouting choice i to point lv and checks
// the capacity conditions: the violated pool's occupancy strictly
// decreases and no within-capacity pool goes over.
func moveKeepsPools(d *Decision, f fleet.Fleet, loads []fleet.Load, oi, i, lv int) bool {
	old := d.Choices[i]
	d.Choices[i].Level = lv
	after := decisionLoads(d.Choices, f)
	d.Choices[i] = old
	if after[oi].Occupancy.Cmp(loads[oi].Occupancy) >= 0 {
		return false
	}
	for k := range after {
		if !loads[k].Over() && after[k].Over() {
			return false
		}
	}
	return true
}

// cheapestDowngradeIn picks the offloaded choice contributing to the
// given pool whose switch to local costs the least expected benefit;
// −1 when the pool has no offloaded contributors.
func cheapestDowngradeIn(choices []Choice, f fleet.Fleet, pool fleet.Load) int {
	best, bestLoss := -1, 0.0
	for i, c := range choices {
		if !c.Offload || !contributes(f, c, pool) {
			continue
		}
		loss := c.Expected - c.Task.EffectiveWeight()*c.Task.LocalBenefit
		if best == -1 || loss < bestLoss {
			best, bestLoss = i, loss
		}
	}
	return best
}

// capacityGuard returns the exact-upgrade guard for a fleet: an
// upgrade candidate is admissible only if routing choice i to point lv
// leaves every capacity pool within its cap.
func capacityGuard(f fleet.Fleet) func([]Choice, int, int) bool {
	return func(choices []Choice, i, lv int) bool {
		old := choices[i]
		choices[i].Offload = true
		choices[i].Level = lv
		loads := decisionLoads(choices, f)
		choices[i] = old
		return fleet.FirstOver(loads) < 0
	}
}
