package core

import (
	"bytes"
	"strings"
	"testing"

	"rtoffload/internal/task"
)

func TestDecisionJSONRoundTrip(t *testing.T) {
	set := twoTaskSet()
	d, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisionJSON(&buf, set)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalExpected != d.TotalExpected {
		t.Fatalf("expected %g vs %g", got.TotalExpected, d.TotalExpected)
	}
	if got.Theorem3Total.Cmp(d.Theorem3Total) != 0 {
		t.Fatalf("totals differ: %v vs %v", got.Theorem3Total, d.Theorem3Total)
	}
	for i := range d.Choices {
		a, b := d.Choices[i], got.Choices[i]
		if a.Task.ID != b.Task.ID || a.Offload != b.Offload || a.Level != b.Level {
			t.Fatalf("choice %d differs: %+v vs %+v", i, a, b)
		}
	}
	if got.CmpTheorem3() > 0 {
		t.Fatal("round-tripped decision over capacity")
	}
}

func TestDecisionJSONExactFlag(t *testing.T) {
	set := task.Set{largeBudgetTask(1), largeBudgetTask(2)}
	base, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := ImproveWithExact(base, set)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := improved.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecisionJSON(&buf, set)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ExactVerified {
		t.Fatal("exact flag lost")
	}
	if got.CmpTheorem3() <= 0 {
		t.Fatal("exact-verified decision expected to exceed Theorem 3")
	}
}

func TestReadDecisionJSONRejections(t *testing.T) {
	set := twoTaskSet()
	d, _ := Decide(set, Options{Solver: SolverDP})

	reject := func(mutate func(*bytes.Buffer) string, want string) {
		t.Helper()
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		s := mutate(&buf)
		_, err := ReadDecisionJSON(strings.NewReader(s), set)
		if err == nil {
			t.Fatalf("%s: accepted", want)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: got %v", want, err)
		}
	}

	reject(func(b *bytes.Buffer) string {
		return strings.Replace(b.String(), `"version": 1`, `"version": 9`, 1)
	}, "version")
	reject(func(b *bytes.Buffer) string {
		return strings.Replace(b.String(), `"taskID": 1`, `"taskID": 99`, 1)
	}, "unknown task")
	reject(func(b *bytes.Buffer) string {
		return strings.Replace(b.String(), `"taskID": 2`, `"taskID": 1`, 1)
	}, "duplicate")
	reject(func(b *bytes.Buffer) string {
		// level 0 is omitted by omitempty; inject an invalid one.
		return strings.Replace(b.String(), `"offload": true`, `"offload": true, "level": 7`, 1)
	}, "out of range")

	// Length mismatch: decision for a different set.
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDecisionJSON(&buf, set[:1]); err == nil {
		t.Error("length mismatch accepted")
	}

	// A decision whose choices violate Theorem 3 on the rebound set:
	// tamper the JSON to offload both tasks at the heavy level... τ1
	// level 1 (w = 35/40) plus τ2 level 0 (35/80) exceeds 1.
	var buf2 bytes.Buffer
	if err := d.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf2.String(), `"offload": true`, `"offload": true, "level": 1`, 1)
	if _, err := ReadDecisionJSON(strings.NewReader(s), set); err == nil {
		t.Error("over-capacity decision accepted")
	}

	// Garbage input.
	if _, err := ReadDecisionJSON(strings.NewReader("{"), set); err == nil {
		t.Error("garbage accepted")
	}
}
