package core

import (
	"testing"

	"rtoffload/internal/fleet"
	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// soloFleet is the degenerate fleet: one neutral server. Decisions
// against it must be bit-identical to the single-server path.
func soloFleet(id string) fleet.Fleet {
	return fleet.Fleet{Servers: []fleet.Server{{ID: id}}}
}

// churnFleet is the multi-server fleet the churn differential runs
// against: a capacity-capped edge box and a slower, discounted cloud,
// coupled through a shared radio group.
func churnFleet() fleet.Fleet {
	return fleet.Fleet{
		Servers: []fleet.Server{
			{ID: "edge", CapNum: 1, CapDen: 2, Group: "radio"},
			{ID: "cloud", ScaleNum: 3, ScaleDen: 2, Extra: rtime.FromMillis(2),
				Reliability: 0.9, Group: "radio", WeightNum: 1, WeightDen: 2},
		},
		Groups: []fleet.Group{{ID: "radio", CapNum: 3, CapDen: 4}},
	}
}

// randomFleetSet draws a small random system of mixed local-only and
// offloadable tasks.
func randomFleetSet(rng *stats.RNG, n int) task.Set {
	var set task.Set
	for id := 0; len(set) < n; id++ {
		if tk := randomAdmissionTask(rng, id); tk != nil {
			set = append(set, tk)
		}
	}
	return set
}

// TestFleetSingleServerOracle is the differential oracle of the fleet
// layer: a 1-server neutral fleet must reproduce the single-server
// Decide bit-for-bit — same choices, bitwise-equal objective,
// Cmp-equal exact total — across seeds, solvers, and the exact
// upgrade. Both a named server (levels gain routing IDs) and the
// anonymous default server are covered.
func TestFleetSingleServerOracle(t *testing.T) {
	solvers := []struct {
		name string
		opts Options
	}{
		{"dp", Options{Solver: SolverDP}},
		{"heu", Options{Solver: SolverHEU}},
		{"bnb", Options{Solver: SolverBnB}},
		{"core", Options{Solver: SolverCore}},
		{"dp-exact", Options{Solver: SolverDP, ExactUpgrade: true}},
		{"heu-exact", Options{Solver: SolverHEU, ExactUpgrade: true}},
		{"core-exact", Options{Solver: SolverCore, ExactUpgrade: true}},
	}
	for _, tc := range solvers {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				rng := stats.NewRNG(stats.DeriveSeed(seed, 31))
				set := randomFleetSet(rng, rng.IntN(7)+2)
				want, wantErr := Decide(set, tc.opts)
				for _, id := range []string{"solo", ""} {
					fopts := tc.opts
					fopts.Fleet = soloFleet(id)
					got, gotErr := Decide(set, fopts)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("seed %d fleet %q: error mismatch: %v vs %v", seed, id, gotErr, wantErr)
					}
					if wantErr != nil {
						continue
					}
					requireSameDecision(t, got, want, "single-server oracle")
					if got.ServerLoads == nil {
						t.Fatalf("seed %d: fleet decision missing ServerLoads", seed)
					}
					for i, c := range got.Choices {
						if c.Offload && c.Task.Levels[c.Level].ServerID != id {
							t.Fatalf("seed %d choice %d: routed to %q, want %q",
								seed, i, c.Task.Levels[c.Level].ServerID, id)
						}
					}
				}
			}
		})
	}
}

// TestFleetAssignmentsValidate proves the pruning contract: fleet
// decisions carry expanded tasks that intentionally break benefit
// monotonicity, but every assignment handed to the scheduler must pass
// its full validation, route to a fleet server, and preserve the
// chosen budget.
func TestFleetAssignmentsValidate(t *testing.T) {
	f := churnFleet()
	for seed := uint64(1); seed <= 10; seed++ {
		rng := stats.NewRNG(stats.DeriveSeed(seed, 32))
		set := randomFleetSet(rng, 6)
		d, err := Decide(set, Options{Solver: SolverCore, Fleet: f})
		if err != nil {
			continue
		}
		asgs := d.Assignments()
		for i, a := range asgs {
			if err := a.Validate(); err != nil {
				t.Fatalf("seed %d: pruned assignment %d invalid: %v", seed, i, err)
			}
			c := d.Choices[i]
			if a.Offload != c.Offload {
				t.Fatalf("seed %d: assignment %d offload mismatch", seed, i)
			}
			if c.Offload {
				if got, want := a.Task.Levels[a.Level].Response, c.Budget(); got != want {
					t.Fatalf("seed %d: assignment %d budget %v, choice budget %v", seed, i, got, want)
				}
				if f.ServerIndex(a.Task.Levels[a.Level].ServerID) < 0 {
					t.Fatalf("seed %d: assignment %d routed to unknown server %q",
						seed, i, a.Task.Levels[a.Level].ServerID)
				}
			} else if len(a.Task.Levels) != 0 {
				t.Fatalf("seed %d: local assignment %d kept %d points", seed, i, len(a.Task.Levels))
			}
		}
	}
}

// TestFleetCapacityRespected drives random systems against fleets with
// tight capacity pools and asserts the repair pass's certificate: no
// pool is ever over its cap, and the exact Theorem-3 bound still holds
// for non-upgraded decisions.
func TestFleetCapacityRespected(t *testing.T) {
	tight := fleet.Fleet{
		Servers: []fleet.Server{
			{ID: "a", CapNum: 1, CapDen: 5, Group: "g"},
			{ID: "b", CapNum: 1, CapDen: 4, Group: "g"},
			{ID: "c", Extra: rtime.FromMillis(1)},
		},
		Groups: []fleet.Group{{ID: "g", CapNum: 3, CapDen: 10}},
	}
	for _, exact := range []bool{false, true} {
		for seed := uint64(1); seed <= 12; seed++ {
			rng := stats.NewRNG(stats.DeriveSeed(seed, 33))
			set := randomFleetSet(rng, 8)
			d, err := Decide(set, Options{Solver: SolverCore, ExactUpgrade: exact, Fleet: tight})
			if err != nil {
				continue
			}
			if over := fleet.FirstOver(d.ServerLoads); over >= 0 {
				t.Fatalf("seed %d exact=%v: pool %q over capacity: %v > %v", seed, exact,
					d.ServerLoads[over].Pool, d.ServerLoads[over].Occupancy, d.ServerLoads[over].Capacity)
			}
			if !exact && d.Theorem3Total.Cmp(ratOne) > 0 {
				t.Fatalf("seed %d: repaired fleet decision exceeds Theorem 3: %v", seed, d.Theorem3Total)
			}
			if err := VerifyExact(d); exact && err != nil {
				t.Fatalf("seed %d: exact-upgraded fleet decision fails QPA: %v", seed, err)
			}
			// The recorded loads must match a recomputation from the
			// choices — the account is part of the decision's contract.
			re := decisionLoads(d.Choices, tight)
			for i := range re {
				if re[i].Occupancy.Cmp(d.ServerLoads[i].Occupancy) != 0 ||
					re[i].Tasks != d.ServerLoads[i].Tasks {
					t.Fatalf("seed %d: pool %q account drifted", seed, re[i].Pool)
				}
			}
		}
	}
}

// TestFleetAdmissionMatchesRebuild extends the admission differential
// contract to fleets: churn through a fleet-configured Admission must
// stay bit-identical to a from-scratch fleet Decide over the same
// originals — including the capacity repair and the guarded exact
// upgrade, and including server churn (every Update re-expands the
// task against the fleet).
func TestFleetAdmissionMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"solo-core", Options{Solver: SolverCore, Fleet: soloFleet("solo")}},
		{"fleet-dp", Options{Solver: SolverDP, Fleet: churnFleet()}},
		{"fleet-heu", Options{Solver: SolverHEU, Fleet: churnFleet()}},
		{"fleet-core", Options{Solver: SolverCore, Fleet: churnFleet()}},
		{"fleet-core-exact", Options{Solver: SolverCore, ExactUpgrade: true, Fleet: churnFleet()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runAdmissionChurnDifferential(t, tc.opts, seed, 30)
			}
		})
	}
}

// TestFleetAdmissionTasksReturnsOriginals pins the admission view
// contract: Tasks() hands back the tasks as admitted, never the
// fleet-expanded twins the decision layer works on.
func TestFleetAdmissionTasksReturnsOriginals(t *testing.T) {
	a := NewAdmission(Options{Solver: SolverDP, Fleet: churnFleet()})
	tk := &task.Task{
		ID: 1, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(10), Setup: ms(2), Compensation: ms(8),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(10), Benefit: 3}, {Response: ms(20), Benefit: 4}},
	}
	if err := a.Add(tk); err != nil {
		t.Fatal(err)
	}
	got := a.Tasks()
	if len(got) != 1 || len(got[0].Levels) != 2 {
		t.Fatalf("Tasks() returned expanded form: %d tasks, %d levels", len(got), len(got[0].Levels))
	}
	for j, lv := range got[0].Levels {
		if lv.ServerID != "" || lv.Response != tk.Levels[j].Response {
			t.Fatalf("Tasks() level %d not original: %+v", j, lv)
		}
	}
	if d := a.Decision(); d == nil || d.ServerLoads == nil {
		t.Fatal("fleet admission decision missing ServerLoads")
	}
	if ok, err := a.Remove(1); !ok || err != nil {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	if a.Len() != 0 || a.Decision() != nil {
		t.Fatal("Remove did not clear fleet state")
	}
}

// TestFleetInfeasibleFleetRejected pins option validation: Decide and
// Admission must reject a structurally invalid fleet before touching
// any task.
func TestFleetInvalidFleetRejected(t *testing.T) {
	bad := fleet.Fleet{Servers: []fleet.Server{{ID: "x", ScaleNum: -1, ScaleDen: 1}}}
	if _, err := Decide(twoTaskSet(), Options{Solver: SolverDP, Fleet: bad}); err == nil {
		t.Fatal("Decide accepted an invalid fleet")
	}
	a := NewAdmission(Options{Solver: SolverDP, Fleet: bad})
	if err := a.Add(twoTaskSet()[0]); err == nil {
		t.Fatal("Admission accepted an invalid fleet")
	}
	if a.Len() != 0 {
		t.Fatal("rejected fleet admission mutated state")
	}
}
