package core

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/task"
)

// demandOf builds the exact demand model of one choice: a
// dbf.Offloaded (split sub-jobs, suspension ≤ Ri) when offloading,
// else a dbf.Sporadic.
func demandOf(c Choice) (dbf.Demand, error) {
	t := c.Task
	if c.Offload {
		return dbf.NewOffloaded(t.SetupAt(c.Level), t.SecondPhaseAt(c.Level),
			t.Deadline, t.Period, t.Levels[c.Level].Response)
	}
	return dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
}

// demandsOf builds the exact demand model of a choice vector.
func demandsOf(choices []Choice) ([]dbf.Demand, error) {
	ds := make([]dbf.Demand, 0, len(choices))
	for _, c := range choices {
		d, err := demandOf(c)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}

// ImproveWithExact upgrades a Theorem-3 decision using the exact
// processor-demand test (QPA over the true split demand bound
// functions) as the feasibility oracle. Theorem 3's linear bound
// (Ci,1+Ci,2)/(Di−Ri) is pessimistic for large budgets Ri; the exact
// test often leaves room for higher offloading levels. The pass
// repeatedly applies the single level upgrade with the largest
// weighted-benefit gain that QPA still admits, until none fits.
//
// Each candidate is tried through an incremental dbf.Analyzer — an
// O(1) demand swap against cached aggregates instead of a full
// rebuild — so the pass is cheap enough for online re-decision. The
// per-(task, level) candidate demands are constructed once up front.
//
// The result may exceed 1 on the Theorem-3 scale (that is the point);
// its ExactVerified flag is set, and the per-claim guarantee is the
// same as the paper's: every deadline is met even if no result ever
// returns. The input decision is not modified.
func ImproveWithExact(d *Decision, set task.Set) (*Decision, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil decision")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	out := &Decision{
		Choices:       append([]Choice(nil), d.Choices...),
		TotalExpected: d.TotalExpected,
		Solver:        d.Solver,
		Repaired:      d.Repaired,
		ExactVerified: true,
	}
	if az, levelDemands, err := newUpgradeState(out.Choices); err == nil {
		improveLoop(out, az, levelDemands, nil)
	}
	total, _ := theorem3Of(out.Choices)
	out.Theorem3Total = total
	return out, nil
}

// newUpgradeState builds the Analyzer over the decision's current
// demands plus the candidate demand of every (task, level) pair.
// Levels that cannot form a valid split model stay nil — they are
// never feasible, matching the rebuild-from-scratch behavior.
func newUpgradeState(choices []Choice) (*dbf.Analyzer, [][]dbf.Demand, error) {
	ds, err := demandsOf(choices)
	if err != nil {
		return nil, nil, err
	}
	az, err := dbf.NewAnalyzer(ds)
	if err != nil {
		return nil, nil, err
	}
	levelDemands := make([][]dbf.Demand, len(choices))
	for i, c := range choices {
		t := c.Task
		levelDemands[i] = make([]dbf.Demand, len(t.Levels))
		for lv := range t.Levels {
			o, err := dbf.NewOffloaded(t.SetupAt(lv), t.SecondPhaseAt(lv),
				t.Deadline, t.Period, t.Levels[lv].Response)
			if err != nil {
				continue
			}
			levelDemands[i][lv] = o
		}
	}
	return az, levelDemands, nil
}

// improveLoop applies the greedy best-gain upgrade until no candidate
// passes the exact test, keeping the Analyzer in sync with out. A
// non-nil guard vetoes candidates before the feasibility probe — the
// fleet path uses it to keep upgrades within the capacity pools.
func improveLoop(out *Decision, az *dbf.Analyzer, levelDemands [][]dbf.Demand,
	guard func(choices []Choice, i, lv int) bool) {
	feasible := (*dbf.Analyzer).Feasible
	for {
		bestIdx, bestLevel := -1, 0
		bestGain := 0.0
		for i, c := range out.Choices {
			t := c.Task
			from := -1 // local
			cur := t.EffectiveWeight() * t.LocalBenefit
			if c.Offload {
				from = c.Level
				cur = t.EffectiveWeight() * t.Levels[c.Level].Benefit
			}
			for lv := from + 1; lv < len(t.Levels); lv++ {
				gain := t.EffectiveWeight()*t.Levels[lv].Benefit - cur
				//rtlint:allow floatexact -- benefit objective is float64 by design; exactness guards time arithmetic only
				if gain <= bestGain {
					continue
				}
				cand := levelDemands[i][lv]
				if cand == nil {
					continue
				}
				if guard != nil && !guard(out.Choices, i, lv) {
					continue
				}
				if az.With(i, cand, feasible) != nil {
					continue
				}
				bestIdx, bestLevel, bestGain = i, lv, gain
			}
		}
		if bestIdx < 0 {
			return
		}
		if err := az.Swap(bestIdx, levelDemands[bestIdx][bestLevel]); err != nil {
			return
		}
		c := &out.Choices[bestIdx]
		old := c.Expected
		c.Offload = true
		c.Level = bestLevel
		c.Expected = c.Task.EffectiveWeight() * c.Task.Levels[bestLevel].Benefit
		out.TotalExpected += c.Expected - old
	}
}

// VerifyExact runs the exact processor-demand test on a decision's
// configuration; nil means every deadline is guaranteed.
func VerifyExact(d *Decision) error {
	ds, err := demandsOf(d.Choices)
	if err != nil {
		return err
	}
	az, err := dbf.NewAnalyzer(ds)
	if err != nil {
		return err
	}
	return az.Feasible()
}
