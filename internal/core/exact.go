package core

import (
	"fmt"

	"rtoffload/internal/dbf"
	"rtoffload/internal/task"
)

// demandsOf builds the exact demand model of a choice vector: one
// dbf.Offloaded per offloaded task (split sub-jobs, suspension ≤ Ri)
// and one dbf.Sporadic per local task.
func demandsOf(choices []Choice) ([]dbf.Demand, error) {
	ds := make([]dbf.Demand, 0, len(choices))
	for _, c := range choices {
		t := c.Task
		if c.Offload {
			o, err := dbf.NewOffloaded(t.SetupAt(c.Level), t.SecondPhaseAt(c.Level),
				t.Deadline, t.Period, t.Levels[c.Level].Response)
			if err != nil {
				return nil, err
			}
			ds = append(ds, o)
		} else {
			s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
			if err != nil {
				return nil, err
			}
			ds = append(ds, s)
		}
	}
	return ds, nil
}

// ImproveWithExact upgrades a Theorem-3 decision using the exact
// processor-demand test (QPA over the true split demand bound
// functions) as the feasibility oracle. Theorem 3's linear bound
// (Ci,1+Ci,2)/(Di−Ri) is pessimistic for large budgets Ri; the exact
// test often leaves room for higher offloading levels. The pass
// repeatedly applies the single level upgrade with the largest
// weighted-benefit gain that QPA still admits, until none fits.
//
// The result may exceed 1 on the Theorem-3 scale (that is the point);
// its ExactVerified flag is set, and the per-claim guarantee is the
// same as the paper's: every deadline is met even if no result ever
// returns. The input decision is not modified.
func ImproveWithExact(d *Decision, set task.Set) (*Decision, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil decision")
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	out := &Decision{
		Choices:       append([]Choice(nil), d.Choices...),
		TotalExpected: d.TotalExpected,
		Solver:        d.Solver,
		Repaired:      d.Repaired,
		ExactVerified: true,
	}
	for {
		bestIdx, bestLevel := -1, 0
		bestGain := 0.0
		for i, c := range out.Choices {
			t := c.Task
			from := -1 // local
			cur := t.EffectiveWeight() * t.LocalBenefit
			if c.Offload {
				from = c.Level
				cur = t.EffectiveWeight() * t.Levels[c.Level].Benefit
			}
			for lv := from + 1; lv < len(t.Levels); lv++ {
				gain := t.EffectiveWeight()*t.Levels[lv].Benefit - cur
				if gain <= bestGain {
					continue
				}
				cand := out.Choices[i]
				cand.Offload = true
				cand.Level = lv
				if !exactFeasibleWith(out.Choices, i, cand) {
					continue
				}
				bestIdx, bestLevel, bestGain = i, lv, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		c := &out.Choices[bestIdx]
		old := c.Expected
		c.Offload = true
		c.Level = bestLevel
		c.Expected = c.Task.EffectiveWeight() * c.Task.Levels[bestLevel].Benefit
		out.TotalExpected += c.Expected - old
	}
	total, _ := theorem3Of(out.Choices)
	out.Theorem3Total = total
	return out, nil
}

// exactFeasibleWith tests QPA feasibility of choices with element i
// replaced by cand.
func exactFeasibleWith(choices []Choice, i int, cand Choice) bool {
	tmp := append([]Choice(nil), choices...)
	tmp[i] = cand
	ds, err := demandsOf(tmp)
	if err != nil {
		return false
	}
	return dbf.QPA(ds) == nil
}

// VerifyExact runs the exact processor-demand test on a decision's
// configuration; nil means every deadline is guaranteed.
func VerifyExact(d *Decision) error {
	ds, err := demandsOf(d.Choices)
	if err != nil {
		return err
	}
	return dbf.QPA(ds)
}
