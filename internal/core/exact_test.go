package core

import (
	"math/big"
	"testing"

	"rtoffload/internal/dbf"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// largeBudgetTask has levels whose Theorem-3 weights are pessimistic:
// a big budget R relative to D makes (C1+C2)/(D−R) huge while the true
// per-period demand stays small.
func largeBudgetTask(id int) *task.Task {
	ms := rtime.FromMillis
	return &task.Task{
		ID: id, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(20), Setup: ms(4), Compensation: ms(20),
		LocalBenefit: 1,
		Levels: []task.Level{
			{Response: ms(30), Benefit: 3},  // w = 24/70
			{Response: ms(70), Benefit: 10}, // w = 24/30 = 0.8: Theorem 3 can afford one
		},
	}
}

func TestImproveWithExact(t *testing.T) {
	set := task.Set{largeBudgetTask(1), largeBudgetTask(2)}
	base, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 3 cannot put both tasks on level 1 (2×0.8 > 1).
	lvl1 := 0
	for _, c := range base.Choices {
		if c.Offload && c.Level == 1 {
			lvl1++
		}
	}
	if lvl1 >= 2 {
		t.Fatalf("Theorem-3 decision already has both at level 1 (total %v)", base.Theorem3Total)
	}
	improved, err := ImproveWithExact(base, set)
	if err != nil {
		t.Fatal(err)
	}
	if !improved.ExactVerified {
		t.Error("ExactVerified not set")
	}
	if improved.TotalExpected <= base.TotalExpected {
		t.Fatalf("no improvement: %g vs %g", improved.TotalExpected, base.TotalExpected)
	}
	// Theorem 3 had to leave the second task local (0.8 + 24/70 > 1);
	// the exact test affords offloading it at level 0. Note it
	// correctly does NOT admit both at level 1: two 20ms compensations
	// can align inside one 25ms window (D−D1−R), which QPA sees and
	// the linear bound cannot express.
	for _, c := range improved.Choices {
		if !c.Offload {
			t.Fatalf("improved choice %+v, want offloaded", c)
		}
	}
	if improved.Theorem3Total.Cmp(big.NewRat(1, 1)) <= 0 {
		t.Errorf("expected Theorem3Total > 1 after exact upgrade, got %v", improved.Theorem3Total)
	}
	if err := VerifyExact(improved); err != nil {
		t.Fatalf("exact verification failed: %v", err)
	}
	// Input untouched.
	if base.ExactVerified {
		t.Error("input decision mutated")
	}

	// The upgraded configuration must still be miss-free under the
	// adversarial server — QPA's guarantee, checked by simulation.
	res, err := sched.Run(sched.Config{
		Assignments: improved.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(2),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses after exact upgrade", res.Misses)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestImproveWithExactNoRoom(t *testing.T) {
	// A saturated system: nothing to upgrade.
	ms := rtime.FromMillis
	set := task.Set{
		{ID: 1, Period: ms(10), Deadline: ms(10), LocalWCET: ms(9), LocalBenefit: 1},
	}
	base, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	improved, err := ImproveWithExact(base, set)
	if err != nil {
		t.Fatal(err)
	}
	if improved.TotalExpected != base.TotalExpected {
		t.Fatal("upgrade out of thin air")
	}
	if _, err := ImproveWithExact(nil, set); err == nil {
		t.Error("nil decision accepted")
	}
}

// Property over random sets: the exact upgrade never loses benefit,
// always stays QPA-feasible, and never misses in adversarial
// simulation.
func TestImproveWithExactProperty(t *testing.T) {
	rng := stats.NewRNG(321)
	improvedCount := 0
	for trial := 0; trial < 25; trial++ {
		p := task.DefaultRandomSetParams()
		p.N = 6
		p.TotalUtil = 0.5
		p.RespLoFrac = 0.3
		p.RespHiFrac = 0.8
		set, err := task.GenerateRandomSet(rng.Fork(), p)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Decide(set, Options{Solver: SolverDP})
		if err != nil {
			t.Fatal(err)
		}
		improved, err := ImproveWithExact(base, set)
		if err != nil {
			t.Fatal(err)
		}
		if improved.TotalExpected < base.TotalExpected-1e-9 {
			t.Fatalf("trial %d: upgrade lost benefit", trial)
		}
		if improved.TotalExpected > base.TotalExpected {
			improvedCount++
		}
		if err := VerifyExact(improved); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := sched.Run(sched.Config{
			Assignments: improved.Assignments(),
			Server:      server.Fixed{Lost: true},
			Horizon:     rtime.FromSeconds(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != 0 {
			t.Fatalf("trial %d: %d misses", trial, res.Misses)
		}
	}
	if improvedCount == 0 {
		t.Error("exact test never improved anything across 25 trials")
	}
}

// Options.ExactUpgrade routes Decide (and through it the online
// Admission manager) through the exact-upgrade pass.
func TestOptionsExactUpgrade(t *testing.T) {
	set := task.Set{largeBudgetTask(1), largeBudgetTask(2)}
	plain, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	up, err := Decide(set, Options{Solver: SolverDP, ExactUpgrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if !up.ExactVerified {
		t.Error("ExactVerified not set by Decide with ExactUpgrade")
	}
	if up.TotalExpected <= plain.TotalExpected {
		t.Fatalf("no upgrade: %g vs %g", up.TotalExpected, plain.TotalExpected)
	}
	if err := VerifyExact(up); err != nil {
		t.Fatal(err)
	}

	a := NewAdmission(Options{Solver: SolverHEU, ExactUpgrade: true})
	for _, tk := range set {
		if err := a.Add(tk); err != nil {
			t.Fatal(err)
		}
	}
	dec := a.Decision()
	if dec == nil || !dec.ExactVerified {
		t.Fatalf("admission decision %+v not exact-verified", dec)
	}
	if err := VerifyExact(dec); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Remove(1); err != nil {
		t.Fatal(err)
	}
	if dec := a.Decision(); dec == nil || !dec.ExactVerified || VerifyExact(dec) != nil {
		t.Fatalf("post-remove decision %+v lost exact verification", dec)
	}
}

// improveRebuildReference is the pre-Analyzer reference: the same
// greedy best-gain loop, but every candidate is tried by rebuilding
// the full demand vector and running a fresh QPA.
func improveRebuildReference(d *Decision, set task.Set) (*Decision, error) {
	if d == nil {
		return nil, nil
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	out := &Decision{
		Choices:       append([]Choice(nil), d.Choices...),
		TotalExpected: d.TotalExpected,
		Solver:        d.Solver,
		Repaired:      d.Repaired,
		ExactVerified: true,
	}
	feasibleAt := func(i, lv int) bool {
		trial := append([]Choice(nil), out.Choices...)
		trial[i].Offload = true
		trial[i].Level = lv
		ds, err := demandsOf(trial)
		if err != nil {
			return false
		}
		return dbf.QPA(ds) == nil
	}
	for {
		bestIdx, bestLevel := -1, 0
		bestGain := 0.0
		for i, c := range out.Choices {
			tk := c.Task
			from := -1
			cur := tk.EffectiveWeight() * tk.LocalBenefit
			if c.Offload {
				from = c.Level
				cur = tk.EffectiveWeight() * tk.Levels[c.Level].Benefit
			}
			for lv := from + 1; lv < len(tk.Levels); lv++ {
				gain := tk.EffectiveWeight()*tk.Levels[lv].Benefit - cur
				if gain <= bestGain || !feasibleAt(i, lv) {
					continue
				}
				bestIdx, bestLevel, bestGain = i, lv, gain
			}
		}
		if bestIdx < 0 {
			break
		}
		c := &out.Choices[bestIdx]
		old := c.Expected
		c.Offload = true
		c.Level = bestLevel
		c.Expected = c.Task.EffectiveWeight() * c.Task.Levels[bestLevel].Benefit
		out.TotalExpected += c.Expected - old
	}
	total, _ := theorem3Of(out.Choices)
	out.Theorem3Total = total
	return out, nil
}

// TestImproveWithExactMatchesRebuild pins the incremental-Analyzer
// implementation to the rebuild-from-scratch reference: identical
// choices, totals and Theorem-3 scale on random sets across solvers.
func TestImproveWithExactMatchesRebuild(t *testing.T) {
	rng := stats.NewRNG(9090)
	for trial := 0; trial < 30; trial++ {
		p := task.DefaultRandomSetParams()
		p.N = rng.IntN(8) + 2
		p.TotalUtil = rng.Uniform(0.2, 0.85)
		p.RespLoFrac = 0.2
		p.RespHiFrac = 0.9
		set, err := task.GenerateRandomSet(rng.Fork(), p)
		if err != nil {
			t.Fatal(err)
		}
		solver := []Solver{SolverDP, SolverHEU, SolverGreedy}[trial%3]
		base, err := Decide(set, Options{Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ImproveWithExact(base, set)
		if err != nil {
			t.Fatal(err)
		}
		want, err := improveRebuildReference(base, set)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalExpected != want.TotalExpected {
			t.Fatalf("trial %d: TotalExpected %g vs reference %g",
				trial, got.TotalExpected, want.TotalExpected)
		}
		if got.Theorem3Total.Cmp(want.Theorem3Total) != 0 {
			t.Fatalf("trial %d: Theorem3Total %v vs reference %v",
				trial, got.Theorem3Total, want.Theorem3Total)
		}
		for i := range got.Choices {
			g, w := got.Choices[i], want.Choices[i]
			if g.Offload != w.Offload || g.Level != w.Level || g.Expected != w.Expected {
				t.Fatalf("trial %d choice %d: %+v vs reference %+v", trial, i, g, w)
			}
		}
	}
}

func TestDecideServerFaster(t *testing.T) {
	ms := rtime.FromMillis
	mk := func(id int) *task.Task {
		return &task.Task{
			ID: id, Period: ms(100), Deadline: ms(100),
			LocalWCET: ms(30), Setup: ms(5), Compensation: ms(30),
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(10), Benefit: 4},
				{Response: ms(20), Benefit: 9},  // < C = 30ms → greedy takes it
				{Response: ms(60), Benefit: 20}, // ≥ C → greedy ignores it
			},
		}
	}
	set := task.Set{mk(1), mk(2), mk(3)}
	d, err := DecideServerFaster(set)
	if err != nil {
		t.Fatal(err)
	}
	if d.Solver != SolverServerFaster || d.Solver.String() != "server-faster" {
		t.Errorf("solver label %v", d.Solver)
	}
	for _, c := range d.Choices {
		if !c.Offload || c.Level != 1 {
			t.Fatalf("greedy choice %+v, want level 1 (highest with R < C)", c)
		}
	}
	// Three tasks at (5+30)/(100−20) = 7/16 each: ≈1.31 — over
	// capacity, which the baseline never notices.
	if d.Theorem3Total.Cmp(big.NewRat(1, 1)) <= 0 {
		t.Fatalf("baseline total %v unexpectedly feasible", d.Theorem3Total)
	}
	// And it actually breaks: deadlines are missed when the server
	// stalls — the failure the paper's mechanism exists to prevent.
	res, err := sched.Run(sched.Config{
		Assignments: d.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("uncoordinated baseline missed no deadlines — demonstration void")
	}
	// The paper's decision on the same set stays safe.
	safe, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sched.Run(sched.Config{
		Assignments: safe.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Misses != 0 {
		t.Fatalf("paper's decision missed %d", res2.Misses)
	}
}

func TestDecideServerFasterLocalFallback(t *testing.T) {
	// No level beats local time: everything stays local.
	set := task.Set{{
		ID: 1, Period: rtime.FromMillis(600), Deadline: rtime.FromMillis(600),
		LocalWCET: rtime.FromMillis(10), Setup: rtime.FromMillis(2),
		Compensation: rtime.FromMillis(10), LocalBenefit: 1,
		Levels: []task.Level{{Response: rtime.FromMillis(100), Benefit: 5}},
	}}
	d, err := DecideServerFaster(set)
	if err != nil {
		t.Fatal(err)
	}
	if d.Choices[0].Offload {
		t.Fatal("offloaded despite slower server")
	}
	if _, err := DecideServerFaster(nil); err == nil {
		t.Error("empty set accepted")
	}
}
