package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"

	"rtoffload/internal/task"
)

// decisionFile is the on-disk JSON schema for decisions: choices are
// stored by task ID so a decision can be rebound to a freshly loaded
// task set.
type decisionFile struct {
	Version int              `json:"version"`
	Solver  string           `json:"solver"`
	Exact   bool             `json:"exactVerified,omitempty"`
	Choices []decisionChoice `json:"choices"`
}

type decisionChoice struct {
	TaskID  int  `json:"taskID"`
	Offload bool `json:"offload"`
	Level   int  `json:"level,omitempty"`
}

const decisionVersion = 1

// WriteJSON serializes the decision (by task ID) for later rebinding
// with ReadDecisionJSON.
func (d *Decision) WriteJSON(w io.Writer) error {
	f := decisionFile{
		Version: decisionVersion,
		Solver:  d.Solver.String(),
		Exact:   d.ExactVerified,
	}
	for _, c := range d.Choices {
		f.Choices = append(f.Choices, decisionChoice{
			TaskID: c.Task.ID, Offload: c.Offload, Level: c.Level,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadDecisionJSON loads a decision and rebinds it to the given task
// set. Every choice must reference an existing task and level; the
// rebuilt decision is re-verified: with the exact flag set the QPA
// test must pass, otherwise the exact Theorem-3 test.
func ReadDecisionJSON(r io.Reader, set task.Set) (*Decision, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	var f decisionFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding decision: %w", err)
	}
	if f.Version != decisionVersion {
		return nil, fmt.Errorf("core: unsupported decision version %d", f.Version)
	}
	if len(f.Choices) != len(set) {
		return nil, fmt.Errorf("core: decision covers %d tasks, set has %d", len(f.Choices), len(set))
	}
	d := &Decision{ExactVerified: f.Exact}
	seen := map[int]bool{}
	for _, fc := range f.Choices {
		t := set.ByID(fc.TaskID)
		if t == nil {
			return nil, fmt.Errorf("core: decision references unknown task %d", fc.TaskID)
		}
		if seen[fc.TaskID] {
			return nil, fmt.Errorf("core: duplicate choice for task %d", fc.TaskID)
		}
		seen[fc.TaskID] = true
		ch := Choice{Task: t, Offload: fc.Offload, Level: fc.Level}
		if fc.Offload {
			if fc.Level < 0 || fc.Level >= len(t.Levels) {
				return nil, fmt.Errorf("core: task %d level %d out of range", fc.TaskID, fc.Level)
			}
			ch.Expected = t.EffectiveWeight() * t.Levels[fc.Level].Benefit
		} else {
			ch.Level = 0
			ch.Expected = t.EffectiveWeight() * t.LocalBenefit
		}
		d.Choices = append(d.Choices, ch)
		d.TotalExpected += ch.Expected
	}
	total, ok := theorem3Of(d.Choices)
	d.Theorem3Total = total
	if f.Exact {
		if err := VerifyExact(d); err != nil {
			return nil, fmt.Errorf("core: loaded decision fails the exact test: %w", err)
		}
	} else if !ok {
		return nil, fmt.Errorf("core: loaded decision fails Theorem 3 (total %s)", total.FloatString(4))
	}
	return d, nil
}

// CmpTheorem3 compares the decision's exact total against 1; it exists
// for callers that want to branch without importing math/big.
func (d *Decision) CmpTheorem3() int {
	return d.Theorem3Total.Cmp(big.NewRat(1, 1))
}
