package core

import (
	"math"
	"testing"

	"rtoffload/internal/benefit"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// benefitOf adapts a task's levels into a response sampler.
func benefitOf(t *task.Task) server.ResponseSampler { return benefit.FromTask(t) }

func TestEstimatorConfigValidate(t *testing.T) {
	good := EstimatorConfig{Probes: 10, Spacing: ms(10), Quantile: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []EstimatorConfig{
		{Probes: 0, Spacing: ms(1), Quantile: 0.5},
		{Probes: 1, Spacing: 0, Quantile: 0.5},
		{Probes: 1, Spacing: ms(1), Quantile: 0},
		{Probes: 1, Spacing: ms(1), Quantile: 1.1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestEstimateBudgetsFixedServer(t *testing.T) {
	set := twoTaskSet()
	set[0].Levels[0].PayloadBytes = 1000
	set[0].Levels[1].PayloadBytes = 2000
	srv := server.Fixed{Latency: ms(42)}
	err := EstimateBudgets(srv, set, EstimatorConfig{Probes: 20, Spacing: ms(5), Quantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic server: every level's budget is 42ms, bumped for
	// strict monotonicity.
	if set[0].Levels[0].Response != ms(42) {
		t.Fatalf("level 0 budget %v", set[0].Levels[0].Response)
	}
	if set[0].Levels[1].Response != ms(42)+1 {
		t.Fatalf("level 1 budget %v (monotonicity bump)", set[0].Levels[1].Response)
	}
}

// TestBudgetFromExactQuantile pins the nearest-rank semantics on
// integer latencies: rank ⌈q·n⌉ of the sorted samples, computed in
// exact arithmetic. The float64 path this replaced could land one rank
// off when q·n rounds across an integer, and truncated the margin
// multiply down by a tick.
func TestBudgetFromExactQuantile(t *testing.T) {
	lats := make([]rtime.Duration, 10)
	for i := range lats {
		lats[i] = ms(int64(i+1) * 10) // 10ms … 100ms
	}
	for _, tc := range []struct {
		q    float64
		want rtime.Duration
	}{
		{0.05, ms(10)}, // ⌈0.5⌉ = rank 1
		// float64 0.1 is a hair above 1/10, so ⌈q·10⌉ is exactly 2 —
		// the rank the given float value truly denotes.
		{0.1, ms(20)},
		{0.11, ms(20)},  // ⌈1.1⌉ = rank 2
		{0.5, ms(50)},   // 0.5 is dyadic: exactly rank 5
		{0.75, ms(80)},  // dyadic: ⌈7.5⌉ = rank 8
		{0.9, ms(100)},  // float64 0.9 is a hair above 9/10: rank 10
		{0.91, ms(100)}, // ⌈9.1⌉ = rank 10
		{1, ms(100)},    // maximum
	} {
		cfg := EstimatorConfig{Probes: 10, Spacing: ms(1), Quantile: tc.q}
		if got := cfg.budgetFrom(lats); got != tc.want {
			t.Errorf("q=%g: budget %v, want %v", tc.q, got, tc.want)
		}
	}
	// One sample: every quantile returns it.
	one := EstimatorConfig{Probes: 1, Spacing: ms(1), Quantile: 0.3}
	if got := one.budgetFrom([]rtime.Duration{ms(7)}); got != ms(7) {
		t.Errorf("single sample: %v", got)
	}
	if got := one.budgetFrom(nil); got != 0 {
		t.Errorf("empty samples: %v", got)
	}
}

// TestBudgetFromMarginRoundsUp pins the checked-integer margin: the
// inflation is computed exactly and rounded up to the next tick, never
// down — 1µs × 10% must yield 2µs, not the float-truncated 1µs.
func TestBudgetFromMarginRoundsUp(t *testing.T) {
	cfg := EstimatorConfig{Probes: 1, Spacing: ms(1), Quantile: 1, Margin: 0.1}
	if got := cfg.budgetFrom([]rtime.Duration{1}); got != 2 {
		t.Errorf("1µs at 10%% margin: %v, want 2µs (ceil)", got)
	}
	// float64 0.1 is slightly above 1/10, so the exact ceiling lands
	// one tick past 110ms — the margin never silently shrinks.
	if got := cfg.budgetFrom([]rtime.Duration{ms(100)}); got != ms(110)+1 {
		t.Errorf("100ms at 10%% margin: %v, want 110ms+1µs", got)
	}
	// An exact multiple stays exact: 0.25 is a dyadic rational.
	quarter := EstimatorConfig{Probes: 1, Spacing: ms(1), Quantile: 1, Margin: 0.25}
	if got := quarter.budgetFrom([]rtime.Duration{ms(40)}); got != ms(50) {
		t.Errorf("40ms at 25%% margin: %v, want 50ms", got)
	}
	// Margin overflow saturates instead of wrapping.
	huge := EstimatorConfig{Probes: 1, Spacing: ms(1), Quantile: 1, Margin: math.MaxFloat64}
	if got := huge.budgetFrom([]rtime.Duration{ms(1)}); got != rtime.Duration(math.MaxInt64) {
		t.Errorf("overflowing margin: %v, want saturation", got)
	}
}

func TestEstimateBudgetsLostProbesKeepPrior(t *testing.T) {
	set := twoTaskSet()
	prior := set[0].Levels[0].Response
	err := EstimateBudgets(server.Fixed{Lost: true}, set, EstimatorConfig{Probes: 5, Spacing: ms(5), Quantile: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if set[0].Levels[0].Response != prior {
		t.Fatalf("lost probes overwrote budget: %v", set[0].Levels[0].Response)
	}
}

func TestEstimateBudgetsBadConfig(t *testing.T) {
	if err := EstimateBudgets(server.Fixed{}, twoTaskSet(), EstimatorConfig{}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestEstimateBudgetsQueueServerQuantile(t *testing.T) {
	rng := stats.NewRNG(11)
	srv, err := server.NewScenario(rng, server.Idle)
	if err != nil {
		t.Fatal(err)
	}
	set := twoTaskSet()
	for i := range set {
		for j := range set[i].Levels {
			set[i].Levels[j].PayloadBytes = 60000
		}
	}
	if err := EstimateBudgets(srv, set, EstimatorConfig{Probes: 200, Spacing: ms(50), Quantile: 0.9}); err != nil {
		t.Fatal(err)
	}
	// Idle scenario with 60kB payloads: budgets should land in the
	// tens-of-milliseconds range, far below the 100ms deadline.
	r := set[0].Levels[0].Response
	if r <= 0 || r > ms(100) {
		t.Fatalf("estimated budget %v implausible", r)
	}
}

func TestEstimateFunction(t *testing.T) {
	srv := server.Fixed{Latency: ms(30)}
	f, err := EstimateFunction(srv, 1000, EstimatorConfig{Probes: 100, Spacing: ms(5), Quantile: 0.9},
		[]float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !f.ValidProbability() {
		t.Fatal("estimated function not a probability")
	}
	if f.Max() != 1 {
		t.Fatalf("max = %g, want 1 (no losses)", f.Max())
	}
	// Both quantiles of a deterministic server land at 30ms; the second
	// point is bumped by 1µs to stay strictly increasing.
	if got := f.At(ms(30)); got != 0.5 {
		t.Fatalf("At(30ms) = %g", got)
	}
	if got := f.At(ms(30) + 1); got != 1 {
		t.Fatalf("At(30ms+1µs) = %g", got)
	}
	if got := f.At(ms(29)); got != 0 {
		t.Fatalf("At(29ms) = %g", got)
	}
}

func TestEstimateFunctionWithLosses(t *testing.T) {
	// A lossy queue server: the function's max must reflect arrivals.
	rng := stats.NewRNG(12)
	cfg := server.QueueConfig{
		Workers: 1, BandwidthBytesPerSec: 1 << 30,
		ServiceMean: ms(5), ServiceRefBytes: 1000,
		LossProbability: 0.5,
	}
	srv, err := server.NewQueue(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EstimateFunction(srv, 1000, EstimatorConfig{Probes: 2000, Spacing: ms(20), Quantile: 0.9},
		[]float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Max()-0.5) > 0.06 {
		t.Fatalf("max = %g, want ≈0.5 with 50%% loss", f.Max())
	}
}

func TestEstimateFunctionAllLost(t *testing.T) {
	if _, err := EstimateFunction(server.Fixed{Lost: true}, 1000,
		EstimatorConfig{Probes: 10, Spacing: ms(1), Quantile: 0.9}, []float64{1}); err == nil {
		t.Error("all-lost probing accepted")
	}
	if _, err := EstimateFunction(server.Fixed{}, 1000, EstimatorConfig{}, []float64{1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestEstimatedSetFeedsDecide(t *testing.T) {
	// Full §3 pipeline: probe → budgets → decide → simulate.
	rng := stats.NewRNG(13)
	srv, err := server.NewScenario(rng.Fork(), server.Idle)
	if err != nil {
		t.Fatal(err)
	}
	set := twoTaskSet()
	for i := range set {
		for j := range set[i].Levels {
			set[i].Levels[j].PayloadBytes = int64(40000 * (j + 1))
		}
	}
	if err := EstimateBudgets(srv, set, EstimatorConfig{Probes: 100, Spacing: ms(100), Quantile: 0.95}); err != nil {
		t.Fatal(err)
	}
	d, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	runSrv, err := server.NewScenario(rng.Fork(), server.Idle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedRun(d, runSrv, rtime.FromSeconds(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
	// With an idle server and 95th-percentile budgets, most offloaded
	// jobs (if any were chosen) must hit.
	for _, c := range d.Choices {
		if !c.Offload {
			continue
		}
		st := res.PerTask[c.Task.ID]
		if st.Finished == 0 {
			continue
		}
		if frac := float64(st.Hits) / float64(st.Finished); frac < 0.7 {
			t.Fatalf("task %d hit fraction %g too low for idle server", c.Task.ID, frac)
		}
	}
}
