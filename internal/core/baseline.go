package core

import (
	"errors"

	"rtoffload/internal/task"
)

// SolverServerFaster labels decisions produced by the related-work
// baseline DecideServerFaster.
const SolverServerFaster Solver = 100

// DecideServerFaster implements the greedy offloading policy of the
// related work (Nimmagadda et al., IROS 2010): a task is offloaded
// whenever the estimated server response time is shorter than its
// local execution time — the rationale being that the result then
// arrives before local computation would have finished. Each task
// independently picks the highest-benefit level whose budget satisfies
// ri,j < Ci.
//
// The policy coordinates nothing across tasks: it neither runs a
// schedulability test nor limits how many tasks offload, which is
// exactly the weakness the paper's mechanism fixes (§2). The returned
// decision carries the exact Theorem-3 total for inspection — it may
// well exceed 1, and simulating such a configuration misses deadlines.
func DecideServerFaster(set task.Set) (*Decision, error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if len(set) == 0 {
		return nil, errors.New("core: empty task set")
	}
	d := &Decision{Solver: SolverServerFaster}
	for _, t := range set {
		ch := Choice{Task: t, Expected: t.EffectiveWeight() * t.LocalBenefit}
		for j := len(t.Levels) - 1; j >= 0; j-- {
			if t.Levels[j].Response < t.LocalWCET {
				ch.Offload = true
				ch.Level = j
				ch.Expected = t.EffectiveWeight() * t.Levels[j].Benefit
				break
			}
		}
		d.Choices = append(d.Choices, ch)
		d.TotalExpected += ch.Expected
	}
	total, _ := theorem3Of(d.Choices)
	d.Theorem3Total = total
	return d, nil
}
