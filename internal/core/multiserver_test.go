package core

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// edgeCloudTask can ship a small frame to a nearby edge box (fast,
// modest quality) or the full frame to a cloud GPU (slow, best
// quality).
func edgeCloudTask(id int) *task.Task {
	return &task.Task{
		ID: id, Period: ms(300), Deadline: ms(300),
		LocalWCET: ms(60), Setup: ms(4), Compensation: ms(60),
		LocalBenefit: 1,
		Levels: []task.Level{
			{ServerID: "edge", Response: ms(15), Benefit: 4, PayloadBytes: 20_000},
			{ServerID: "cloud", Response: ms(120), Benefit: 9, PayloadBytes: 200_000},
		},
	}
}

func TestMultiServerRouting(t *testing.T) {
	tk := edgeCloudTask(1)
	servers := map[string]server.Server{
		"edge":  server.Fixed{Latency: ms(10)},
		"cloud": server.Fixed{Latency: ms(100)},
	}
	// Force the cloud level and verify the latency pattern matches the
	// cloud server.
	res, err := sched.Run(sched.Config{
		Assignments: []sched.Assignment{{Task: tk, Offload: true, Level: 1}},
		Servers:     servers,
		Horizon:     ms(900),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 || res.PerTask[1].Hits != 3 {
		t.Fatalf("cloud run: %+v", res.PerTask[1])
	}
	for _, j := range res.Jobs {
		// setup 4ms + cloud 100ms + C3 0 = 104ms.
		if j.Finish != j.Release.Add(ms(104)) {
			t.Fatalf("job finish %v, want release+104ms (cloud latency)", j.Finish)
		}
	}
	// Edge level routes to the edge server.
	res, err = sched.Run(sched.Config{
		Assignments: []sched.Assignment{{Task: tk, Offload: true, Level: 0}},
		Servers:     servers,
		Horizon:     ms(900),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.Finish != j.Release.Add(ms(14)) {
			t.Fatalf("job finish %v, want release+14ms (edge latency)", j.Finish)
		}
	}
}

func TestMultiServerValidation(t *testing.T) {
	tk := edgeCloudTask(1)
	// Unknown server name.
	if _, err := sched.Run(sched.Config{
		Assignments: []sched.Assignment{{Task: tk, Offload: true, Level: 0}},
		Servers:     map[string]server.Server{"cloud": server.Fixed{}},
		Horizon:     ms(100),
	}); err == nil {
		t.Error("unknown server accepted")
	}
	// Level without ServerID needs the default server.
	plain := edgeCloudTask(2)
	plain.Levels[0].ServerID = ""
	if _, err := sched.Run(sched.Config{
		Assignments: []sched.Assignment{{Task: plain, Offload: true, Level: 0}},
		Servers:     map[string]server.Server{"edge": server.Fixed{}},
		Horizon:     ms(100),
	}); err == nil {
		t.Error("missing default server accepted")
	}
}

func TestEstimateBudgetsRouted(t *testing.T) {
	set := task.Set{edgeCloudTask(1), edgeCloudTask(2)}
	servers := map[string]server.Server{
		"edge":  server.Fixed{Latency: ms(10)},
		"cloud": server.Fixed{Latency: ms(100)},
	}
	cfg := EstimatorConfig{Probes: 10, Spacing: ms(5), Quantile: 0.9}
	if err := EstimateBudgetsRouted(nil, servers, set, cfg); err != nil {
		t.Fatal(err)
	}
	for _, tk := range set {
		if tk.Levels[0].Response != ms(10) {
			t.Fatalf("edge budget %v", tk.Levels[0].Response)
		}
		if tk.Levels[1].Response != ms(100) {
			t.Fatalf("cloud budget %v", tk.Levels[1].Response)
		}
	}
	// Unknown route rejected.
	bad := task.Set{edgeCloudTask(3)}
	bad[0].Levels[0].ServerID = "nowhere"
	if err := EstimateBudgetsRouted(nil, servers, bad, cfg); err == nil {
		t.Error("unknown route accepted")
	}
}

// The decision chooses between components by capacity: with both tasks
// wanting the cloud's quality, the Theorem-3 weights of the slow cloud
// budgets force one task onto the edge.
func TestDecisionPicksBetweenComponents(t *testing.T) {
	set := task.Set{edgeCloudTask(1), edgeCloudTask(2)}
	servers := map[string]server.Server{
		"edge":  server.Fixed{Latency: ms(10)},
		"cloud": server.Fixed{Latency: ms(160)},
	}
	cfg := EstimatorConfig{Probes: 10, Spacing: ms(5), Quantile: 0.9}
	if err := EstimateBudgetsRouted(nil, servers, set, cfg); err != nil {
		t.Fatal(err)
	}
	// cloud weight: (4+60)/(300−160) ≈ 0.457; edge: 64/290 ≈ 0.22.
	// Both cloud: 0.91 — fits! Tighten: shrink deadline via clone.
	for _, tk := range set {
		tk.Period, tk.Deadline = ms(260), ms(260)
		tk.LocalWCET, tk.Compensation = ms(52), ms(52)
	}
	// cloud: 56/100 = 0.56 ×2 = 1.12 > 1 → mixed assignment optimal.
	dec, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	cloud, edge := 0, 0
	for _, c := range dec.Choices {
		if !c.Offload {
			continue
		}
		switch c.Task.Levels[c.Level].ServerID {
		case "cloud":
			cloud++
		case "edge":
			edge++
		}
	}
	if cloud != 1 || edge != 1 {
		t.Fatalf("want 1 cloud + 1 edge, got %d/%d (choices %+v)", cloud, edge, dec.Choices)
	}
	// And it runs miss-free against both components.
	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Servers:     servers,
		Horizon:     rtime.FromSeconds(3),
		RNG:         stats.NewRNG(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
}
