package core_test

import (
	"fmt"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// ExampleDecide shows the Offloading Decision Manager choosing between
// local execution and two offloading levels for a single task.
func ExampleDecide() {
	ms := rtime.FromMillis
	set := task.Set{{
		ID: 1, Name: "vision",
		Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(40), Setup: ms(5), Compensation: ms(40),
		LocalBenefit: 10,
		Levels: []task.Level{
			{Response: ms(20), Benefit: 15},
			{Response: ms(50), Benefit: 30},
		},
	}}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c := dec.Choices[0]
	fmt.Printf("offload=%v budget=%v benefit=%.0f\n", c.Offload, c.Budget(), dec.TotalExpected)
	fmt.Printf("Theorem 3 total: %s\n", dec.Theorem3Total.FloatString(2))
	// Output:
	// offload=true budget=50ms benefit=30
	// Theorem 3 total: 0.90
}

// ExampleDecision_Assignments wires a decision into the EDF simulator
// and demonstrates the hard guarantee: zero misses even when the
// server never responds.
func ExampleDecision_Assignments() {
	ms := rtime.FromMillis
	set := task.Set{{
		ID: 1, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(30), Setup: ms(4), Compensation: ms(30),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(25), Benefit: 7}},
	}}
	dec, _ := core.Decide(set, core.Options{Solver: core.SolverDP})
	res, _ := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      server.Fixed{Lost: true},
		Horizon:     rtime.FromSeconds(1),
	})
	fmt.Printf("jobs=%d compensations=%d misses=%d\n",
		res.PerTask[1].Released, res.PerTask[1].Compensations, res.Misses)
	// Output:
	// jobs=10 compensations=10 misses=0
}
