package core

import (
	"fmt"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// AdaptiveConfig parameterizes the epoch-based adaptive controller: an
// online version of the Benefit and Response Time Estimator that
// re-probes the server between epochs and re-decides, tracking
// non-stationary server load (bursty networks, diurnal GPU load).
type AdaptiveConfig struct {
	// Epoch is the wall-clock length of one decision epoch.
	Epoch rtime.Duration
	// Epochs is how many epochs to run.
	Epochs int
	// Estimator drives the between-epoch probing.
	Estimator EstimatorConfig
	// Solver for the per-epoch decision.
	Solver Solver
	// MissPolicy for the per-epoch simulation.
	OnMiss sched.MissPolicy
}

// Validate checks the configuration.
func (c AdaptiveConfig) Validate() error {
	if c.Epoch <= 0 {
		return fmt.Errorf("core: adaptive epoch must be positive")
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("core: need at least one epoch")
	}
	return c.Estimator.Validate()
}

// EpochResult records one adaptive epoch.
type EpochResult struct {
	Epoch    int
	Decision *Decision
	Sim      *sched.Result
}

// AdaptiveRun simulates `Epochs` epochs against srv. Before every
// epoch the controller probes the *live* server (sharing its clock, so
// bursty state carries over), overwrites the tasks' response budgets
// with the configured quantile, re-decides, and runs the epoch. The
// schedulability guarantee holds within every epoch regardless of
// estimation quality; adaptation only moves benefit.
//
// The probe requests advance the shared server clock, modelling a
// system that dedicates a small measurement budget between epochs.
func AdaptiveRun(set task.Set, srv server.Server, cfg AdaptiveConfig, rng *stats.RNG) ([]EpochResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("core: adaptive run needs an RNG")
	}
	work := set.Clone()
	out := make([]EpochResult, 0, cfg.Epochs)
	clock := rtime.Instant(0)
	for e := 0; e < cfg.Epochs; e++ {
		// Online estimation against the live server state.
		for _, t := range work {
			prev := rtime.Duration(0)
			for j := range t.Levels {
				var lats []rtime.Duration
				lats, clock = server.ProbeFrom(srv, clock, cfg.Estimator.Probes,
					t.Levels[j].PayloadBytes, cfg.Estimator.Spacing)
				if len(lats) > 0 {
					t.Levels[j].Response = cfg.Estimator.budgetFrom(lats)
				}
				if t.Levels[j].Response <= prev {
					t.Levels[j].Response = prev + 1
				}
				prev = t.Levels[j].Response
			}
		}
		if err := work.Validate(); err != nil {
			return nil, fmt.Errorf("core: epoch %d estimation produced invalid set: %w", e, err)
		}
		dec, err := Decide(work, Options{Solver: cfg.Solver})
		if err != nil {
			return nil, fmt.Errorf("core: epoch %d: %w", e, err)
		}
		sim, err := sched.Run(sched.Config{
			Assignments: dec.Assignments(),
			Server:      shiftedServer{srv, clock},
			Horizon:     cfg.Epoch,
			OnMiss:      cfg.OnMiss,
			RNG:         rng.Fork(),
		})
		if err != nil {
			return nil, err
		}
		clock = clock.Add(cfg.Epoch)
		out = append(out, EpochResult{Epoch: e, Decision: dec, Sim: sim})
	}
	return out, nil
}

// shiftedServer presents a stateful server whose clock is offset: the
// epoch simulation runs on local time starting at zero while the
// underlying server keeps one global monotone timeline.
type shiftedServer struct {
	inner server.Server
	base  rtime.Instant
}

// Respond implements server.Server.
func (s shiftedServer) Respond(issue rtime.Instant, taskID int, payloadBytes int64) server.Response {
	return s.inner.Respond(s.base+issue, taskID, payloadBytes)
}
