package core

import (
	"math/big"
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// guaranteedTask has a pessimistic server bound of 40ms: its second
// level (R=50ms ≥ bound) is guaranteed and budgets only C3; its first
// level (R=20ms < bound) still needs the full compensation.
func guaranteedTask() *task.Task {
	ms := rtime.FromMillis
	return &task.Task{
		ID: 1, Name: "bounded",
		Period: ms(100), Deadline: ms(100),
		LocalWCET:    ms(40),
		Setup:        ms(4),
		Compensation: ms(40),
		PostProcess:  ms(2),
		LocalBenefit: 1,
		ServerWCRT:   ms(40),
		Levels: []task.Level{
			{Response: ms(20), Benefit: 5},
			{Response: ms(50), Benefit: 9},
		},
	}
}

func TestGuaranteedWeightUsesPostProcess(t *testing.T) {
	tk := guaranteedTask()
	if tk.GuaranteedAt(0) {
		t.Fatal("level 0 (R < bound) marked guaranteed")
	}
	if !tk.GuaranteedAt(1) {
		t.Fatal("level 1 (R ≥ bound) not guaranteed")
	}
	if got := tk.SecondPhaseAt(0); got != rtime.FromMillis(40) {
		t.Errorf("level 0 second phase %v, want C2", got)
	}
	if got := tk.SecondPhaseAt(1); got != rtime.FromMillis(2) {
		t.Errorf("level 1 second phase %v, want C3", got)
	}
	// Level 0: (4+40)/(100−20) = 44/80. Level 1: (4+2)/(100−50) = 6/50.
	w0, err := tk.OffloadWeight(0)
	if err != nil {
		t.Fatal(err)
	}
	if w0.Cmp(big.NewRat(44, 80)) != 0 {
		t.Errorf("w0 = %v", w0)
	}
	w1, err := tk.OffloadWeight(1)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Cmp(big.NewRat(6, 50)) != 0 {
		t.Errorf("w1 = %v, want 6/50 (C3-based)", w1)
	}
}

func TestGuaranteedValidation(t *testing.T) {
	tk := guaranteedTask()
	tk.PostProcess = 0
	if err := tk.Validate(); err == nil {
		t.Error("guaranteed level without C3 accepted")
	}
	tk = guaranteedTask()
	tk.ServerWCRT = -1
	if err := tk.Validate(); err == nil {
		t.Error("negative bound accepted")
	}
	// Bound above every level: no guaranteed levels, C3 not required.
	tk = guaranteedTask()
	tk.ServerWCRT = rtime.FromMillis(500)
	tk.PostProcess = 0
	if err := tk.Validate(); err != nil {
		t.Errorf("non-triggering bound rejected: %v", err)
	}
}

// The §3 extension's payoff: with the bound, the guaranteed level is
// far cheaper than its compensation-budgeted version, so the decision
// can pack an otherwise impossible configuration.
func TestGuaranteedEnablesMoreOffloading(t *testing.T) {
	a, b := guaranteedTask(), guaranteedTask()
	b.ID = 2
	set := task.Set{a, b}
	dec, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	// Both tasks fit at the guaranteed level: 2×6/50 = 0.24.
	for _, c := range dec.Choices {
		if !c.Offload || c.Level != 1 {
			t.Fatalf("choice %+v, want guaranteed level 1", c)
		}
	}
	if dec.TotalExpected != 18 {
		t.Fatalf("expected benefit %g", dec.TotalExpected)
	}
	// Without the bound the same levels cost (4+40)/50 = 0.88 each:
	// only one task could take level 1.
	a2, b2 := guaranteedTask(), guaranteedTask()
	a2.ServerWCRT, b2.ServerWCRT = 0, 0
	b2.ID = 2
	dec2, err := Decide(task.Set{a2, b2}, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	if dec2.TotalExpected >= dec.TotalExpected {
		t.Fatalf("unbounded decision %g not worse than bounded %g", dec2.TotalExpected, dec.TotalExpected)
	}
}

// End to end: against a reservation-backed (Bounded) server the
// guaranteed configuration runs hit-only and miss-free; against a
// misbehaving server the violation counter trips.
func TestGuaranteedSimulation(t *testing.T) {
	a, b := guaranteedTask(), guaranteedTask()
	b.ID = 2
	set := task.Set{a, b}
	dec, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}

	good := server.Bounded{Inner: server.Fixed{Lost: true}, Bound: rtime.FromMillis(40)}
	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      good,
		Horizon:     rtime.FromSeconds(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses with honest bound", res.Misses)
	}
	for _, st := range res.PerTask {
		if st.Compensations != 0 || st.BoundViolations != 0 {
			t.Fatalf("compensations with honest bound: %+v", st)
		}
		if st.Hits != st.Finished {
			t.Fatalf("not all hits: %+v", st)
		}
	}

	// A server that ignores its advertised bound: violations recorded.
	bad := server.Fixed{Latency: rtime.FromMillis(80)}
	res, err = sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      bad,
		Horizon:     rtime.FromSeconds(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	viol := 0
	for _, st := range res.PerTask {
		viol += st.BoundViolations
	}
	if viol == 0 {
		t.Fatal("bound violations not recorded")
	}
}

// Closing the loop with the related-work reservation server [10]: its
// WCRT bound feeds task.ServerWCRT, the decision budgets only Ci,3,
// and the simulated reservation never violates the bound — so the
// cheap guaranteed configuration runs hit-only.
func TestReservationBackedGuarantee(t *testing.T) {
	ms := rtime.FromMillis
	resCfg := server.ReservationConfig{
		Budget:         ms(4),
		Period:         ms(10),
		ServicePerByte: 0.1,
		ServiceFloor:   ms(1),
		TransferBound:  ms(2),
	}
	const payload = 70_000
	bound := resCfg.WCRTBound(payload) // 26ms

	// Reservations are per task (the related work reserves capacity per
	// offloaded task): each task routes to its own named reservation.
	mk := func(id int, resName string) *task.Task {
		return &task.Task{
			ID: id, Period: ms(100), Deadline: ms(100),
			LocalWCET: ms(40), Setup: ms(4), Compensation: ms(40),
			PostProcess:  ms(2),
			LocalBenefit: 1,
			ServerWCRT:   bound,
			Levels: []task.Level{
				{Response: bound, Benefit: 9, PayloadBytes: payload, ServerID: resName},
			},
		}
	}
	set := task.Set{mk(1, "res1"), mk(2, "res2")}
	dec, err := Decide(set, Options{Solver: SolverDP})
	if err != nil {
		t.Fatal(err)
	}
	// Guaranteed weight (4+2)/(100−26) per task: both offload.
	if dec.OffloadedCount() != 2 {
		t.Fatalf("offloaded %d, want 2 (choices %+v)", dec.OffloadedCount(), dec.Choices)
	}
	servers := map[string]server.Server{}
	for _, name := range []string{"res1", "res2"} {
		srv, err := server.NewReservation(resCfg)
		if err != nil {
			t.Fatal(err)
		}
		servers[name] = srv
	}
	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Servers:     servers,
		Horizon:     rtime.FromSeconds(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses", res.Misses)
	}
	for _, st := range res.PerTask {
		if st.Compensations != 0 || st.BoundViolations != 0 {
			t.Fatalf("reservation violated its own bound: %+v", st)
		}
		if st.Hits != st.Finished {
			t.Fatalf("not all hits: %+v", st)
		}
	}
}
