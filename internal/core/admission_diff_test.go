package core

import (
	"testing"

	"rtoffload/internal/rtime"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// randomAdmissionTask draws one valid offloadable task for churn
// tests, or nil when the generator rounds itself invalid.
func randomAdmissionTask(rng *stats.RNG, id int) *task.Task {
	period := rtime.FromMillis(rng.UniformInt(20, 800))
	deadline := period
	if rng.Bool(0.25) {
		deadline = period/2 + rtime.Duration(rng.Int64N(int64(period/2)))
	}
	c := rtime.Duration(rng.Int64N(int64(deadline/3))) + 1
	tk := &task.Task{
		ID: id, Period: period, Deadline: deadline,
		LocalWCET: c, Setup: c/4 + 1, Compensation: c,
		PostProcess:  c / 4,
		LocalBenefit: rng.Uniform(0, 3),
		Weight:       rng.Uniform(0.5, 3),
	}
	nlv := rng.IntN(3) + 1
	prevR, prevB := rtime.Duration(0), tk.LocalBenefit
	for j := 0; j < nlv; j++ {
		r := prevR + rtime.Duration(rng.Int64N(int64(deadline)))/rtime.Duration(nlv+1) + 1
		b := prevB + rng.Uniform(0.1, 2)
		tk.Levels = append(tk.Levels, task.Level{Response: r, Benefit: b})
		prevR, prevB = r, b
	}
	if tk.Validate() != nil {
		return nil
	}
	return tk
}

// requireSameDecision asserts bit-identity between the incremental
// admission decision and the from-scratch Decide reference: same
// choices, bitwise-equal float objective, Cmp-equal exact total, same
// repair count and verification flag.
func requireSameDecision(t *testing.T, got, want *Decision, ctx string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil decision (got %v, want %v)", ctx, got, want)
	}
	if len(got.Choices) != len(want.Choices) {
		t.Fatalf("%s: %d choices, reference has %d", ctx, len(got.Choices), len(want.Choices))
	}
	for i := range got.Choices {
		g, w := got.Choices[i], want.Choices[i]
		if g.Task.ID != w.Task.ID || g.Offload != w.Offload || g.Level != w.Level || g.Expected != w.Expected {
			t.Fatalf("%s: choice %d differs: got {id=%d off=%v lv=%d exp=%x} want {id=%d off=%v lv=%d exp=%x}",
				ctx, i, g.Task.ID, g.Offload, g.Level, g.Expected, w.Task.ID, w.Offload, w.Level, w.Expected)
		}
	}
	if got.TotalExpected != want.TotalExpected {
		t.Fatalf("%s: TotalExpected %x vs reference %x", ctx, got.TotalExpected, want.TotalExpected)
	}
	if got.Theorem3Total.Cmp(want.Theorem3Total) != 0 {
		t.Fatalf("%s: Theorem3Total %v vs reference %v", ctx, got.Theorem3Total, want.Theorem3Total)
	}
	if got.Repaired != want.Repaired || got.ExactVerified != want.ExactVerified || got.Solver != want.Solver {
		t.Fatalf("%s: metadata differs: got {rep=%d exact=%v solver=%v} want {rep=%d exact=%v solver=%v}",
			ctx, got.Repaired, got.ExactVerified, got.Solver, want.Repaired, want.ExactVerified, want.Solver)
	}
}

// runAdmissionChurnDifferential drives one random add/update/remove
// sequence through an Admission, checking after every committed
// operation that the incremental decision is bit-identical to a full
// Decide rebuild of the same set, and after every rejected operation
// that the state was left untouched.
func runAdmissionChurnDifferential(t *testing.T, opts Options, seed uint64, ops int) {
	t.Helper()
	rng := stats.NewRNG(stats.DeriveSeed(seed, 11))
	a := NewAdmission(opts)
	nextID := 0
	for op := 0; op < ops; op++ {
		before := a.Decision()
		nBefore := a.Len()
		switch {
		case a.Len() == 0 || rng.Bool(0.45):
			tk := randomAdmissionTask(rng, nextID)
			nextID++
			if tk == nil {
				continue
			}
			if err := a.Add(tk); err != nil {
				if a.Decision() != before || a.Len() != nBefore {
					t.Fatalf("seed %d op %d: rejected Add mutated state", seed, op)
				}
				continue
			}
		case rng.Bool(0.4):
			ts := a.Tasks()
			tk := randomAdmissionTask(rng, ts[rng.IntN(len(ts))].ID)
			if tk == nil {
				continue
			}
			if err := a.Update(tk); err != nil {
				if a.Decision() != before || a.Len() != nBefore {
					t.Fatalf("seed %d op %d: rejected Update mutated state", seed, op)
				}
				continue
			}
		default:
			ts := a.Tasks()
			ok, err := a.Remove(ts[rng.IntN(len(ts))].ID)
			if err != nil || !ok {
				t.Fatalf("seed %d op %d: Remove: %v %v", seed, op, ok, err)
			}
		}
		if a.Len() == 0 {
			if a.Decision() != nil {
				t.Fatalf("seed %d op %d: decision survives empty set", seed, op)
			}
			continue
		}
		ref, err := Decide(a.Tasks(), opts)
		if err != nil {
			t.Fatalf("seed %d op %d: reference Decide on committed set failed: %v", seed, op, err)
		}
		requireSameDecision(t, a.Decision(), ref, "churn")
	}
}

// TestAdmissionMatchesRebuild is the differential contract of the
// incremental admission path: across solvers, with and without the
// exact upgrade, every committed decision is bit-identical to what a
// from-scratch Decide would produce for the same task set.
func TestAdmissionMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"dp", Options{Solver: SolverDP}},
		{"heu", Options{Solver: SolverHEU}},
		{"bnb", Options{Solver: SolverBnB}},
		{"core", Options{Solver: SolverCore}},
		{"heu-exact", Options{Solver: SolverHEU, ExactUpgrade: true}},
		{"bnb-exact", Options{Solver: SolverBnB, ExactUpgrade: true}},
		{"core-exact", Options{Solver: SolverCore, ExactUpgrade: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				runAdmissionChurnDifferential(t, tc.opts, seed, 40)
			}
		})
	}
}

// TestAdmissionCoreLongChurn is a longer serial replay on the solvers
// that run over the persistent mckp.Solver, so the cached frontiers and
// the upgrade pool survive hundreds of structural deltas while staying
// bit-identical to rebuild-plus-cold-solve. Rejected operations along
// the way exercise the solver rollback path for every delta kind.
func TestAdmissionCoreLongChurn(t *testing.T) {
	ops := 250
	if testing.Short() {
		ops = 60
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"core", Options{Solver: SolverCore}},
		{"core-exact", Options{Solver: SolverCore, ExactUpgrade: true}},
		{"dp", Options{Solver: SolverDP}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runAdmissionChurnDifferential(t, tc.opts, 7, ops)
		})
	}
}

// TestAdmissionChurnParallelRaceClean churns several independent
// admissions concurrently (each its own goroutine, seed, and solver
// state). Admission itself is not concurrency-safe, but distinct
// instances must share nothing — under -race this catches any hidden
// package-level state in the persistent solver's arenas or caches.
func TestAdmissionChurnParallelRaceClean(t *testing.T) {
	opts := []Options{
		{Solver: SolverCore},
		{Solver: SolverCore, ExactUpgrade: true},
		{Solver: SolverDP},
		{Solver: SolverHEU, ExactUpgrade: true},
	}
	done := make(chan struct{})
	for i, o := range opts {
		go func(i int, o Options) {
			defer func() { done <- struct{}{} }()
			runAdmissionChurnDifferential(t, o, 20+uint64(i), 30)
		}(i, o)
	}
	for range opts {
		<-done
	}
}

// TestAdmissionCoreRollback pins the persistent-solver rollback on the
// grow and replace deltas: a rejected Add or Update must leave the warm
// solver mirroring the committed classes, so the next committed
// decision is still bit-identical to a from-scratch Decide.
func TestAdmissionCoreRollback(t *testing.T) {
	opts := Options{Solver: SolverCore}
	a := NewAdmission(opts)
	if err := a.Add(heavyLocalTask(1, ms(60), ms(100))); err != nil {
		t.Fatal(err)
	}
	// Growing by a second 60%-utilization local-only task overloads the
	// processor: rejected, exercising the opGrow rollback.
	if err := a.Add(heavyLocalTask(2, ms(60), ms(100))); err == nil {
		t.Skip("expected overload admission unexpectedly succeeded")
	}
	if err := a.Add(heavyLocalTask(3, ms(10), ms(100))); err != nil {
		t.Fatalf("light admission after rejection: %v", err)
	}
	ref, err := Decide(a.Tasks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, a.Decision(), ref, "after opGrow rollback")
	// An overloading Update is rejected, exercising the opSame rollback.
	if err := a.Update(heavyLocalTask(3, ms(60), ms(100))); err == nil {
		t.Skip("expected overload update unexpectedly succeeded")
	}
	if err := a.Update(heavyLocalTask(3, ms(20), ms(100))); err != nil {
		t.Fatalf("light update after rejection: %v", err)
	}
	ref, err = Decide(a.Tasks(), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, a.Decision(), ref, "after opSame rollback")
}

// TestAdmissionRemoveAtomic forces a re-decision failure during Remove
// (via an unknown solver, white-box) and asserts the documented
// invariant: the removal is rejected, the task stays admitted, and the
// previous decision remains current.
func TestAdmissionRemoveAtomic(t *testing.T) {
	a := NewAdmission(Options{Solver: SolverDP})
	set := twoTaskSet()
	if err := a.Add(set[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(set[1]); err != nil {
		t.Fatal(err)
	}
	before := a.Decision()
	a.opts.Solver = Solver(99) // make the next re-decision fail
	ok, err := a.Remove(set[0].ID)
	if err == nil || ok {
		t.Fatalf("Remove with failing re-decision: ok=%v err=%v", ok, err)
	}
	if a.Len() != 2 || a.Decision() != before {
		t.Fatal("failed Remove mutated state")
	}
	a.opts.Solver = SolverDP
	if ok, err := a.Remove(set[0].ID); err != nil || !ok {
		t.Fatalf("Remove after restoring solver: ok=%v err=%v", ok, err)
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d after successful Remove", a.Len())
	}
}

// TestAdmissionUpdate covers the Update contract: in-place level
// changes re-decide, unknown IDs and invalid or overloading updates
// are rejected without mutating state.
func TestAdmissionUpdate(t *testing.T) {
	a := NewAdmission(Options{Solver: SolverDP})
	tk := &task.Task{
		ID: 1, Period: ms(100), Deadline: ms(100),
		LocalWCET: ms(10), Setup: ms(5), Compensation: ms(10),
		LocalBenefit: 1,
		Levels:       []task.Level{{Response: ms(20), Benefit: 2}},
	}
	if err := a.Add(tk); err != nil {
		t.Fatal(err)
	}
	if err := a.Update(nil); err == nil {
		t.Fatal("nil update accepted")
	}
	if err := a.Update(heavyLocalTask(9, ms(1), ms(100))); err == nil {
		t.Fatal("update of unknown ID accepted")
	}
	before := a.Decision()
	// Overloading update: 2× the deadline cannot be scheduled.
	if err := a.Update(heavyLocalTask(1, ms(99), ms(100))); err != nil {
		t.Fatalf("valid heavy update rejected: %v", err)
	}
	if a.Decision() == before || a.Decision().Choices[0].Offload {
		t.Fatal("update did not re-decide")
	}
	// Now an update that makes the set infeasible must roll back.
	bad := heavyLocalTask(1, ms(100), ms(100))
	if err := a.Add(heavyLocalTask(2, ms(1), ms(100))); err != nil {
		t.Fatal(err)
	}
	grown := a.Decision()
	if err := a.Update(bad); err == nil {
		// 100% + co-runner cannot fit; if it somehow does, skip.
		t.Skip("expected infeasible update was admitted")
	}
	if a.Len() != 2 || a.Decision() != grown {
		t.Fatal("rejected update mutated state")
	}
	if got := a.Tasks().ByID(1).LocalWCET; got != ms(99) {
		t.Fatalf("task 1 WCET %v after rejected update, want %v", got, ms(99))
	}
}
