package core

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"rtoffload/internal/benefit"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/task"
)

// EstimatorConfig parameterizes the Benefit and Response Time
// Estimator (§3.2): offline probing of the unreliable server followed
// by coarse-grained statistical estimation of the per-level response
// budgets.
type EstimatorConfig struct {
	// Probes per level; more probes tighten the quantile estimate.
	Probes int
	// Spacing between probe requests; should approximate the task's
	// production period so queueing effects are representative.
	Spacing rtime.Duration
	// Quantile in (0, 1]: the level's estimated worst-case response
	// time Ri is this quantile of the observed latencies (e.g. 0.9 for
	// a coarse 90th-percentile estimate).
	Quantile float64
	// Margin inflates the estimated budgets by the given fraction
	// (budget = quantile × (1+Margin)). Probing measures an unloaded
	// request stream; a margin absorbs the extra queueing the system's
	// own concurrent offloads will cause (§3.2's accuracy discussion).
	// Must be ≥ 0; 0 disables.
	Margin float64
}

// Validate checks the configuration.
func (c EstimatorConfig) Validate() error {
	if c.Probes <= 0 {
		return fmt.Errorf("core: estimator needs probes > 0")
	}
	if c.Spacing <= 0 {
		return fmt.Errorf("core: estimator needs positive spacing")
	}
	//rtlint:allow floatexact -- range check on a user-supplied float parameter, not time arithmetic
	if c.Quantile <= 0 || c.Quantile > 1 {
		return fmt.Errorf("core: estimator quantile %g out of (0,1]", c.Quantile)
	}
	//rtlint:allow floatexact -- range check on a user-supplied float parameter, not time arithmetic
	if c.Margin < 0 {
		return fmt.Errorf("core: negative estimator margin %g", c.Margin)
	}
	return nil
}

// budgetFrom converts observed latencies into a budget estimate: the
// exact nearest-rank Quantile of the integer latencies, inflated by
// Margin in exact rational arithmetic with the result rounded *up* to
// the next microsecond tick. The budgets feed the exact admission
// analysis, so the estimate must never round below the observed
// quantile — the earlier float64 ECDF path could both misrank the
// quantile (⌈q·n⌉ computed in floats can land one rank off) and
// truncate the margin multiply down by a tick.
func (c EstimatorConfig) budgetFrom(lats []rtime.Duration) rtime.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]rtime.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return inflateBudget(s[nearestRank(c.Quantile, len(s))], c.Margin)
}

// nearestRank returns the 0-based nearest-rank index ⌈q·n⌉−1, clamped
// into [0, n−1]. Every float64 is a dyadic rational, so SetFloat64 is
// lossless and the ceiling is exact.
func nearestRank(q float64, n int) int {
	r := new(big.Rat).SetFloat64(q)
	if r == nil || r.Sign() <= 0 {
		return 0
	}
	// ⌈num·n/den⌉ − 1 = ⌊(num·n − 1)/den⌋ for positive operands.
	idx := new(big.Int).Mul(r.Num(), big.NewInt(int64(n)))
	idx.Div(idx.Sub(idx, big.NewInt(1)), r.Denom())
	if !idx.IsInt64() || idx.Int64() >= int64(n) {
		return n - 1
	}
	if i := idx.Int64(); i > 0 {
		return int(i)
	}
	return 0
}

// inflateBudget returns base + ⌈base·margin⌉ exactly, saturating at
// the int64 ceiling. Rounding the margin contribution up is the
// conservative direction: a safety margin that silently shrinks by a
// tick defeats its purpose.
func inflateBudget(base rtime.Duration, margin float64) rtime.Duration {
	m := new(big.Rat).SetFloat64(margin)
	if m == nil || m.Sign() <= 0 {
		return base
	}
	extra := new(big.Int).Mul(big.NewInt(int64(base)), m.Num())
	q, rem := new(big.Int).QuoRem(extra, m.Denom(), new(big.Int))
	if rem.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	q.Add(q, big.NewInt(int64(base)))
	if !q.IsInt64() {
		return rtime.Duration(math.MaxInt64)
	}
	return rtime.Duration(q.Int64())
}

// EstimateBudgets probes srv with each level's payload and overwrites
// the level's Response with the configured quantile of the observed
// latencies, preserving benefit values and WCETs. Levels whose probes
// all get lost keep their prior Response. The set is modified in
// place; strict response monotonicity across levels is restored by
// bumping ties (larger payloads cannot report smaller budgets).
func EstimateBudgets(srv server.Server, set task.Set, cfg EstimatorConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	clock := rtime.Instant(0)
	for _, t := range set {
		prev := rtime.Duration(0)
		for j := range t.Levels {
			var lats []rtime.Duration
			lats, clock = server.ProbeFrom(srv, clock, cfg.Probes, t.Levels[j].PayloadBytes, cfg.Spacing)
			// Idle gap between batches lets the server queue drain so
			// each level measures steady state, not the previous
			// batch's backlog tail.
			//rtlint:allow overflowguard -- 20 probe spacings of validated config, far below the int64 horizon
			clock = clock.Add(20 * cfg.Spacing)
			if len(lats) > 0 {
				t.Levels[j].Response = cfg.budgetFrom(lats)
			}
			if t.Levels[j].Response <= prev {
				t.Levels[j].Response = prev + 1
			}
			prev = t.Levels[j].Response
		}
	}
	return set.Validate()
}

// EstimateBudgetsRouted is EstimateBudgets for multi-component systems:
// levels with a ServerID are probed against their named server, others
// against def. Each server keeps its own monotone probe clock.
func EstimateBudgetsRouted(def server.Server, servers map[string]server.Server, set task.Set, cfg EstimatorConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	clocks := map[string]rtime.Instant{}
	for _, t := range set {
		prev := rtime.Duration(0)
		for j := range t.Levels {
			id := t.Levels[j].ServerID
			srv := def
			if id != "" {
				srv = servers[id]
				if srv == nil {
					return fmt.Errorf("core: task %d level %d routes to unknown server %q", t.ID, j, id)
				}
			}
			var lats []rtime.Duration
			lats, clocks[id] = server.ProbeFrom(srv, clocks[id], cfg.Probes, t.Levels[j].PayloadBytes, cfg.Spacing)
			//rtlint:allow overflowguard -- 20 probe spacings of validated config, far below the int64 horizon
			clocks[id] = clocks[id].Add(20 * cfg.Spacing)
			if len(lats) > 0 {
				t.Levels[j].Response = cfg.budgetFrom(lats)
			}
			if t.Levels[j].Response <= prev {
				t.Levels[j].Response = prev + 1
			}
			prev = t.Levels[j].Response
		}
	}
	return set.Validate()
}

// EstimateFunction builds a probability-valued benefit function for
// one payload size by probing: Gi(r) = fraction of probes answered
// within r, discretized at the given quantiles. Lost probes lower the
// attainable maximum. This is the constructor used when the system
// objective is the expected number of in-time results (§6.2).
func EstimateFunction(srv server.Server, payloadBytes int64, cfg EstimatorConfig, quantiles []float64) (*benefit.Function, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lats := server.Probe(srv, cfg.Probes, payloadBytes, cfg.Spacing)
	if len(lats) == 0 {
		return nil, fmt.Errorf("core: no probe responses for payload %d", payloadBytes)
	}
	//rtlint:allow floatexact -- arrival fraction is a probability feeding float benefit values, not time arithmetic
	arrivalFrac := float64(len(lats)) / float64(cfg.Probes)
	f, err := benefit.FromResponseSamples(lats, quantiles, 0)
	if err != nil {
		return nil, err
	}
	//rtlint:allow floatexact -- probability comparison on the benefit scale, not time arithmetic
	if arrivalFrac >= 1 {
		return f, nil
	}
	// Scale the CDF by the arrival fraction: quantile q of the
	// *arrived* probes corresponds to overall probability q·frac.
	pts := f.OffloadPoints()
	scaled := make([]benefit.Point, len(pts))
	for i, p := range pts {
		scaled[i] = benefit.Point{R: p.R, Value: p.Value * arrivalFrac}
	}
	return benefit.New(0, scaled...)
}
