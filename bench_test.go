// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus the DESIGN.md ablations. Each benchmark both
// measures the harness and reports the experiment's headline numbers
// as custom metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction run. EXPERIMENTS.md records the paper-vs-measured
// comparison.
package rtoffload_test

import (
	"fmt"
	"testing"

	"rtoffload/internal/admitd"
	"rtoffload/internal/core"
	"rtoffload/internal/dbf"
	"rtoffload/internal/exp"
	"rtoffload/internal/partition"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

// benchCaseConfig trims probe counts so a single iteration stays in
// the hundreds of milliseconds without changing the calibration.
func benchCaseConfig() exp.CaseStudyConfig {
	cfg := exp.DefaultCaseStudyConfig()
	cfg.Probes = 150
	return cfg
}

// BenchmarkTable1 regenerates Table 1: the PSNR benefit ladders and
// probed response budgets of the four robot-vision tasks.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(benchCaseConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: 24 work sets × 3 scenarios of
// the case study. The scenario means are reported as custom metrics
// (the paper's headline: busy ≈ baseline, idle ≫ baseline).
func BenchmarkFigure2(b *testing.B) {
	var res *exp.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Figure2(benchCaseConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		for _, s := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
			vals := res.Series(s)
			sum := 0.0
			for _, v := range vals {
				sum += v
			}
			b.ReportMetric(sum/float64(len(vals)), "norm-"+s.String())
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: the estimation-accuracy sweep
// for DP and HEU-OE. The extreme and centre points are reported as
// custom metrics.
func BenchmarkFigure3(b *testing.B) {
	cfg := exp.DefaultFigure3Config()
	cfg.Trials = 5
	var res *exp.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		dp := res.Series(core.SolverDP)
		heu := res.Series(core.SolverHEU)
		b.ReportMetric(dp[0], "dp-xneg40")
		b.ReportMetric(dp[4], "dp-x0")
		b.ReportMetric(dp[len(dp)-1], "dp-xpos40")
		b.ReportMetric(heu[4], "heu-x0")
	}
}

// BenchmarkAblationSolvers compares decision quality of DP, HEU-OE and
// the naive greedy on the paper's random task sets (ablation B).
func BenchmarkAblationSolvers(b *testing.B) {
	var rows []exp.SolverAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.SolverAblation(1, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanQuality, "quality-"+r.Solver.String())
	}
}

// BenchmarkAblationNaiveEDF compares the paper's deadline splitting
// against naive EDF under an adversarial server (ablation A).
func BenchmarkAblationNaiveEDF(b *testing.B) {
	var rows []exp.NaiveEDFAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.NaiveEDFAblation(7, []float64{0.6, 0.8, 0.95}, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		b.ReportMetric(last.SplitMissRate, "split-missrate@95")
		b.ReportMetric(last.NaiveMissRate, "naive-missrate@95")
	}
}

// BenchmarkAblationDBF compares the Theorem-3 admission test against
// the exact QPA test over the split dbf (ablation C).
func BenchmarkAblationDBF(b *testing.B) {
	var rows []exp.DBFAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.DBFAblation(11, []float64{0.8, 1.1}, 30, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Systems == 0 {
			continue
		}
		b.ReportMetric(float64(r.Theorem3Accepted)/float64(r.Systems), "thm3-accept")
		b.ReportMetric(float64(r.ExactAccepted)/float64(r.Systems), "exact-accept")
	}
}

// BenchmarkDecideDP measures one Offloading Decision Manager run with
// the pseudo-polynomial DP on the paper's 30-task configuration.
func BenchmarkDecideDP(b *testing.B) {
	set, err := task.GenerateFigure3(stats.NewRNG(3), task.DefaultFigure3Params())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decide(set, core.Options{Solver: core.SolverDP}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideHEU measures the HEU-OE heuristic on the same
// configuration — the paper's fast alternative.
func BenchmarkDecideHEU(b *testing.B) {
	set, err := task.GenerateFigure3(stats.NewRNG(3), task.DefaultFigure3Params())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decide(set, core.Options{Solver: core.SolverHEU}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEDFSimulator measures scheduler throughput: a 30-task
// system over a 60 s horizon (~3000 jobs) with offloading and
// compensation paths exercised.
func BenchmarkEDFSimulator(b *testing.B) {
	rng := stats.NewRNG(5)
	set, err := task.GenerateFigure3(rng.Fork(), task.DefaultFigure3Params())
	if err != nil {
		b.Fatal(err)
	}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		b.Fatal(err)
	}
	asgs := dec.Assignments()
	var jobs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(sched.Config{
			Assignments: asgs,
			Server:      server.Fixed{Latency: rtime.FromMillis(150)},
			Horizon:     rtime.FromSeconds(60),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatalf("%d misses", res.Misses)
		}
		jobs = len(res.Jobs)
	}
	b.ReportMetric(float64(jobs), "jobs/run")
}

// benchSchedAssignments builds a deterministic n-task system for the
// scheduler micro-benchmarks: a mix of local and offloaded tasks whose
// budgets straddle the fixed server latency, so the hit,
// compensation, and preemption paths are all exercised. `util` is the
// nominal total local utilization (above 1 = overload).
func benchSchedAssignments(n int, util float64) []sched.Assignment {
	asgs := make([]sched.Assignment, 0, n)
	for i := 0; i < n; i++ {
		period := rtime.FromMillis(int64(20 + 15*(i%10)))
		c := rtime.Duration(util / float64(n) * float64(period))
		if c < 4 {
			c = 4
		}
		tk := &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: c, LocalBenefit: 1,
		}
		if i%3 == 0 {
			asgs = append(asgs, sched.Assignment{Task: tk})
			continue
		}
		tk.Setup = c/4 + 1
		tk.Compensation = c
		tk.PostProcess = c / 8
		tk.Levels = []task.Level{{Response: period / 3, Benefit: 2}}
		asgs = append(asgs, sched.Assignment{Task: tk, Offload: true})
	}
	return asgs
}

// benchSchedRun is the shared body of the scheduler engine benchmarks:
// one op = one full sched.Run over a 2 s horizon.
func benchSchedRun(b *testing.B, n int, util float64, policy sched.Policy, onMiss sched.MissPolicy, rec bool) {
	cfg := sched.Config{
		Assignments: benchSchedAssignments(n, util),
		Server:      server.Fixed{Latency: rtime.FromMillis(20)},
		Horizon:     rtime.FromSeconds(2),
		Policy:      policy,
		OnMiss:      onMiss,
		RecordTrace: rec,
	}
	var jobs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		jobs = len(res.Jobs)
	}
	b.ReportMetric(float64(jobs), "jobs/run")
}

// benchSchedMatrix fans one policy/miss combination out over the
// 10-/100-task and trace-on/off grid of the engine benchmarks.
func benchSchedMatrix(b *testing.B, util float64, policy sched.Policy, onMiss sched.MissPolicy) {
	for _, n := range []int{10, 100} {
		for _, rec := range []bool{false, true} {
			name := fmt.Sprintf("tasks=%d/notrace", n)
			if rec {
				name = fmt.Sprintf("tasks=%d/trace", n)
			}
			b.Run(name, func(b *testing.B) {
				benchSchedRun(b, n, util, policy, onMiss, rec)
			})
		}
	}
}

// BenchmarkSchedSplitEDF measures the engine on the paper's policy at
// a feasible load: the hot path of every Figure-2/3 sweep.
func BenchmarkSchedSplitEDF(b *testing.B) {
	benchSchedMatrix(b, 0.75, sched.SplitEDF, sched.ContinueLate)
}

// BenchmarkSchedNaiveEDF measures the naive-EDF baseline used by the
// §5.1 ablation.
func BenchmarkSchedNaiveEDF(b *testing.B) {
	benchSchedMatrix(b, 0.75, sched.NaiveEDF, sched.ContinueLate)
}

// BenchmarkSchedAbortAtDeadline measures the firm-deadline overload
// path: a 1.3-utilization system whose jobs are continually aborted,
// stressing the deadline calendar.
func BenchmarkSchedAbortAtDeadline(b *testing.B) {
	benchSchedMatrix(b, 1.3, sched.SplitEDF, sched.AbortAtDeadline)
}

// BenchmarkTheorem3 measures the exact rational schedulability test on
// a 30-task system.
func BenchmarkTheorem3(b *testing.B) {
	rng := stats.NewRNG(9)
	var off []dbf.Offloaded
	var loc []dbf.Sporadic
	for i := 0; i < 15; i++ {
		period := rtime.FromMillis(rng.UniformInt(100, 700))
		c := rtime.Duration(rng.Int64N(int64(period/80))) + 1
		o, err := dbf.NewOffloaded(c, c, period, period, period/4)
		if err != nil {
			b.Fatal(err)
		}
		off = append(off, o)
		s, err := dbf.NewSporadic(c, period, period)
		if err != nil {
			b.Fatal(err)
		}
		loc = append(loc, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := dbf.Theorem3(off, loc); !ok {
			b.Fatal("unexpected rejection")
		}
	}
}

// BenchmarkQPA measures the exact processor-demand test on the same
// system — the tighter admission alternative.
func BenchmarkQPA(b *testing.B) {
	rng := stats.NewRNG(9)
	var ds []dbf.Demand
	for i := 0; i < 15; i++ {
		period := rtime.FromMillis(rng.UniformInt(100, 700))
		c := rtime.Duration(rng.Int64N(int64(period/80))) + 1
		o, err := dbf.NewOffloaded(c, c, period, period, period/4)
		if err != nil {
			b.Fatal(err)
		}
		s, err := dbf.NewSporadic(c, period, period)
		if err != nil {
			b.Fatal(err)
		}
		ds = append(ds, o, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dbf.QPA(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactUpgrade measures the QPA-driven upgrade pass on random
// sets with large response budgets (where Theorem 3 is pessimistic)
// and reports the mean benefit gain over the Theorem-3 decision.
func BenchmarkExactUpgrade(b *testing.B) {
	p := task.DefaultRandomSetParams()
	p.N = 8
	p.TotalUtil = 0.5
	p.RespLoFrac = 0.3
	p.RespHiFrac = 0.8
	gain := 0.0
	count := 0
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(uint64(i) + 1)
		set, err := task.GenerateRandomSet(rng, p)
		if err != nil {
			b.Fatal(err)
		}
		base, err := core.Decide(set, core.Options{Solver: core.SolverDP})
		if err != nil {
			b.Fatal(err)
		}
		improved, err := core.ImproveWithExact(base, set)
		if err != nil {
			b.Fatal(err)
		}
		if base.TotalExpected > 0 {
			gain += improved.TotalExpected / base.TotalExpected
			count++
		}
	}
	if count > 0 {
		b.ReportMetric(gain/float64(count), "gain-vs-thm3")
	}
}

// BenchmarkImproveWithExact isolates the QPA-driven upgrade pass: the
// Theorem-3 decision is computed once outside the loop, so ns/op and
// allocs/op measure only the exact-feasibility search — the hot path
// of every exact ablation and of online re-decision.
func BenchmarkImproveWithExact(b *testing.B) {
	p := task.DefaultRandomSetParams()
	p.N = 8
	p.TotalUtil = 0.5
	p.RespLoFrac = 0.3
	p.RespHiFrac = 0.8
	set, err := task.GenerateRandomSet(stats.NewRNG(17), p)
	if err != nil {
		b.Fatal(err)
	}
	base, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var improved *core.Decision
	for i := 0; i < b.N; i++ {
		improved, err = core.ImproveWithExact(base, set)
		if err != nil {
			b.Fatal(err)
		}
	}
	if improved != nil && base.TotalExpected > 0 {
		b.ReportMetric(improved.TotalExpected/base.TotalExpected, "gain-vs-thm3")
	}
}

// BenchmarkAdmissionChurn measures online admission churn: a rolling
// window of tasks where every iteration admits one task and evicts the
// oldest — the Add/Remove re-decision pattern of the online manager.
func BenchmarkAdmissionChurn(b *testing.B) {
	mkTask := func(id int) *task.Task {
		period := rtime.FromMillis(int64(100 + 37*(id%7)))
		c := period / 20
		return &task.Task{
			ID: id, Period: period, Deadline: period,
			LocalWCET: c, Setup: c/4 + 1, Compensation: c,
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: period / 4, Benefit: 2},
				{Response: period / 2, Benefit: 3},
			},
		}
	}
	a := core.NewAdmission(core.Options{Solver: core.SolverHEU})
	const window = 8
	for id := 0; id < window; id++ {
		if err := a.Add(mkTask(id)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := window + i
		if err := a.Add(mkTask(id)); err != nil {
			b.Fatal(err)
		}
		if ok, err := a.Remove(id - window); err != nil || !ok {
			b.Fatalf("remove %d: ok=%v err=%v", id-window, ok, err)
		}
	}
}

// BenchmarkPartitionScaling measures partitioned decisions across core
// counts and reports the benefit scaling (8 heavy tasks).
func BenchmarkPartitionScaling(b *testing.B) {
	var set task.Set
	for i := 0; i < 8; i++ {
		period := rtime.FromMillis(400)
		set = append(set, &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: rtime.FromMillis(140), Setup: rtime.FromMillis(4),
			Compensation: rtime.FromMillis(140), LocalBenefit: 1,
			Levels: []task.Level{
				{Response: rtime.FromMillis(60), Benefit: 3},
				{Response: rtime.FromMillis(150), Benefit: 8},
			},
		})
	}
	results := map[int]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{4, 8} {
			d, err := partition.Decide(set, partition.Options{
				Cores: cores, Core: core.Options{Solver: core.SolverDP},
			})
			if err != nil {
				b.Fatal(err)
			}
			results[cores] = d.TotalExpected
		}
	}
	b.ReportMetric(results[4], "benefit-4cores")
	b.ReportMetric(results[8], "benefit-8cores")
}

// BenchmarkBaselineServerFaster contrasts the related-work greedy
// baseline with the paper's decision on a workload where greedy
// over-commits: it reports each policy's deadline-miss count under an
// adversarial server.
func BenchmarkBaselineServerFaster(b *testing.B) {
	var set task.Set
	for i := 0; i < 3; i++ {
		period := rtime.FromMillis(100)
		set = append(set, &task.Task{
			ID: i, Period: period, Deadline: period,
			LocalWCET: rtime.FromMillis(30), Setup: rtime.FromMillis(5),
			Compensation: rtime.FromMillis(30), LocalBenefit: 1,
			Levels: []task.Level{
				{Response: rtime.FromMillis(20), Benefit: 9},
			},
		})
	}
	var greedyMisses, paperMisses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy, err := core.DecideServerFaster(set)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sched.Run(sched.Config{
			Assignments: greedy.Assignments(),
			Server:      server.Fixed{Lost: true},
			Horizon:     rtime.FromSeconds(1),
		})
		if err != nil {
			b.Fatal(err)
		}
		greedyMisses = res.Misses
		paper, err := core.Decide(set, core.Options{Solver: core.SolverDP})
		if err != nil {
			b.Fatal(err)
		}
		res, err = sched.Run(sched.Config{
			Assignments: paper.Assignments(),
			Server:      server.Fixed{Lost: true},
			Horizon:     rtime.FromSeconds(1),
		})
		if err != nil {
			b.Fatal(err)
		}
		paperMisses = res.Misses
	}
	b.ReportMetric(float64(greedyMisses), "greedy-misses")
	b.ReportMetric(float64(paperMisses), "paper-misses")
}

// BenchmarkAblationFP compares admission rates of the FP baselines
// (suspension-oblivious / suspension-jitter RTA) against the paper's
// EDF deadline-splitting tests (ablation D).
func BenchmarkAblationFP(b *testing.B) {
	var rows []exp.FPAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.FPAblation(13, []float64{0.4, 0.6, 0.8}, 40, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	var obl, jit, thm, exact, systems int
	for _, r := range rows {
		obl += r.FPOblivious
		jit += r.FPJitter
		thm += r.EDFTheorem3
		exact += r.EDFExact
		systems += r.Systems
	}
	if systems > 0 {
		n := float64(systems)
		b.ReportMetric(float64(obl)/n, "accept-fp-oblivious")
		b.ReportMetric(float64(jit)/n, "accept-fp-jitter")
		b.ReportMetric(float64(thm)/n, "accept-edf-thm3")
		b.ReportMetric(float64(exact)/n, "accept-edf-exact")
	}
}

// BenchmarkEnergyStudy quantifies the intro's energy motivation:
// client-energy savings of the case-study configuration per scenario
// against the all-local baseline.
func BenchmarkEnergyStudy(b *testing.B) {
	var rows []exp.EnergyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.EnergyStudy(benchCaseConfig(), exp.DefaultPowerModel())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Savings, "savings-"+r.Scenario.String())
	}
}

// BenchmarkAdaptive measures the epoch-based adaptive controller on a
// bursty Gilbert server and reports its benefit against freezing the
// first decision.
func BenchmarkAdaptive(b *testing.B) {
	ms := rtime.FromMillis
	mkSet := func() task.Set {
		var set task.Set
		for i := 1; i <= 2; i++ {
			set = append(set, &task.Task{
				ID: i, Period: ms(200), Deadline: ms(200),
				LocalWCET: ms(40), Setup: ms(3), Compensation: ms(40),
				LocalBenefit: 1,
				Levels: []task.Level{
					{Response: ms(20), Benefit: 6, PayloadBytes: 1000},
					{Response: ms(60), Benefit: 6.5, PayloadBytes: 1000},
				},
			})
		}
		return set
	}
	gcfg := server.GilbertConfig{
		GoodDuration: rtime.FromSeconds(4), BadDuration: rtime.FromSeconds(4),
		GoodLatency: ms(8), BadLatency: ms(120), Sigma: 0.1,
	}
	var adaptive float64
	for i := 0; i < b.N; i++ {
		srv, err := server.NewGilbert(stats.NewRNG(33), gcfg)
		if err != nil {
			b.Fatal(err)
		}
		epochs, err := core.AdaptiveRun(mkSet(), srv, core.AdaptiveConfig{
			Epoch:     rtime.FromSeconds(2),
			Epochs:    10,
			Estimator: core.EstimatorConfig{Probes: 12, Spacing: ms(5), Quantile: 0.9},
			Solver:    core.SolverDP,
		}, stats.NewRNG(3))
		if err != nil {
			b.Fatal(err)
		}
		adaptive = 0
		for _, e := range epochs {
			if e.Sim.Misses != 0 {
				b.Fatal("adaptive epoch missed deadlines")
			}
			adaptive += e.Sim.TotalBenefit
		}
	}
	b.ReportMetric(adaptive, "adaptive-benefit")
}

// admitdChurnOp applies one churn operation to the full-rebuild
// reference: tentative set edit, then a from-scratch core.Decide —
// the per-arrival cost the pre-incremental admission manager paid.
func admitdChurnRebuildOp(set task.Set, o admitd.Op, opts core.Options) (task.Set, bool) {
	var next task.Set
	switch o.Kind {
	case admitd.OpAdmit:
		next = append(set.Clone(), o.Task)
	case admitd.OpUpdate:
		next = set.Clone()
		for i, t := range next {
			if t.ID == o.ID {
				next[i] = o.Task
			}
		}
	default:
		next = make(task.Set, 0, len(set))
		for _, t := range set.Clone() {
			if t.ID != o.ID {
				next = append(next, t)
			}
		}
	}
	if _, err := core.Decide(next, opts); err != nil {
		return set, false
	}
	return next, true
}

// benchAdmitdChurn drives the deterministic admitd churn stream
// through either the incremental core.Admission path or the
// full-rebuild reference, after priming a steady-state live set.
func benchAdmitdChurn(b *testing.B, opts core.Options, incremental bool) {
	const seed, maxLive, prime = 7, 10, 60
	st := admitd.NewStream(seed, maxLive)
	if incremental {
		a := core.NewAdmission(opts)
		apply := func(o admitd.Op) {
			var err error
			switch o.Kind {
			case admitd.OpAdmit:
				err = a.Add(o.Task)
			case admitd.OpUpdate:
				err = a.Update(o.Task)
			default:
				_, err = a.Remove(o.ID)
			}
			st.Commit(o, err == nil)
		}
		for i := 0; i < prime; i++ {
			apply(st.Next())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(st.Next())
		}
		return
	}
	var set task.Set
	apply := func(o admitd.Op) {
		next, ok := admitdChurnRebuildOp(set, o, opts)
		set = next
		st.Commit(o, ok)
	}
	for i := 0; i < prime; i++ {
		apply(st.Next())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(st.Next())
	}
}

// BenchmarkAdmitdChurn compares the per-operation cost of online
// admission churn on the incremental path (persistent caches +
// analyzer deltas) against the from-scratch rebuild the admission
// manager used to pay, with and without the exact-upgrade pass. The
// operation streams are identical, so ns/op is directly comparable.
func BenchmarkAdmitdChurn(b *testing.B) {
	for _, tc := range []struct {
		name        string
		opts        core.Options
		incremental bool
	}{
		{"rebuild", core.Options{Solver: core.SolverDP}, false},
		{"rebuild-exact", core.Options{Solver: core.SolverDP, ExactUpgrade: true}, false},
		{"incremental", core.Options{Solver: core.SolverDP}, true},
		{"incremental-exact", core.Options{Solver: core.SolverDP, ExactUpgrade: true}, true},
		{"rebuild-heu-exact", core.Options{Solver: core.SolverHEU, ExactUpgrade: true}, false},
		{"incremental-heu-exact", core.Options{Solver: core.SolverHEU, ExactUpgrade: true}, true},
		{"rebuild-core-exact", core.Options{Solver: core.SolverCore, ExactUpgrade: true}, false},
		{"incremental-core", core.Options{Solver: core.SolverCore}, true},
		{"incremental-core-exact", core.Options{Solver: core.SolverCore, ExactUpgrade: true}, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchAdmitdChurn(b, tc.opts, tc.incremental)
		})
	}
}

// BenchmarkAdmitdService measures one operation through the full
// admission service — shard lookup, locking, incremental re-decision,
// view rendering — with four tenants churning round-robin.
func BenchmarkAdmitdService(b *testing.B) {
	const tenants = 4
	s := admitd.New(core.Options{Solver: core.SolverDP, ExactUpgrade: true})
	streams := make([]*admitd.Stream, tenants)
	names := make([]string, tenants)
	for i := range streams {
		streams[i] = admitd.NewStream(uint64(i)+1, 10)
		names[i] = fmt.Sprintf("tenant-%d", i)
	}
	apply := func(i int) {
		st := streams[i%tenants]
		o := st.Next()
		var err error
		switch o.Kind {
		case admitd.OpAdmit:
			_, err = s.Admit(names[i%tenants], o.Task)
		case admitd.OpUpdate:
			_, err = s.Update(names[i%tenants], o.Task)
		default:
			_, err = s.Evict(names[i%tenants], o.ID)
		}
		st.Commit(o, err == nil)
	}
	for i := 0; i < 15*tenants; i++ {
		apply(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(i)
	}
}
