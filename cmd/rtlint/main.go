// Command rtlint runs the repository's domain-specific lint suite:
// four per-package analyzers (determinism, floatexact, overflowguard,
// errsink) plus three interprocedural ones riding a shared call graph
// (hotalloc, guardedby, arenaescape). See internal/analysis for the
// rules and CONTRIBUTING.md for the directive and annotation syntax.
//
// rtlint is stdlib-only (go/parser + go/types over the module's
// packages) and exits 1 on any finding, 2 on load/type errors or bad
// usage. Package analysis fans out over internal/parallel.Map; output
// is path-ordered and bit-identical at any worker count.
//
// Usage:
//
//	rtlint [-dir module-root] [-workers n] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rtoffload/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run keeps the driver testable: it returns the process exit code
// instead of calling os.Exit from the middle of the logic.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("rtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	workers := fs.Int("workers", 0, "package-analysis parallelism (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		for _, a := range analysis.AllInterprocedural {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	start := time.Now() //rtlint:allow determinism -- wall-clock timer reported to stderr
	mod, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "rtlint:", err)
		return 2
	}
	diags, err := analysis.RunModule(mod, analysis.ModuleOptions{Workers: *workers})
	if err != nil {
		fmt.Fprintln(stderr, "rtlint:", err)
		return 2
	}
	for _, d := range diags {
		// Report module-relative paths so output is stable across
		// checkouts.
		if rel, err := filepath.Rel(mod.Dir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Fprintln(stdout, d)
	}
	//rtlint:allow determinism -- wall-clock timer reported to stderr
	elapsed := time.Since(start)
	fmt.Fprintf(stderr, "rtlint: %d finding(s) across %d package(s) in %v\n", len(diags), len(mod.Packages), elapsed.Round(time.Millisecond))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
