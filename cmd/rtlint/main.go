// Command rtlint runs the repository's domain-specific lint suite:
// four static analyzers (determinism, floatexact, overflowguard,
// errsink) that machine-check the invariants the experiment engine
// and the exact demand-analysis tiers rely on. See internal/analysis
// for the rules and CONTRIBUTING.md for the directive syntax.
//
// rtlint is stdlib-only (go/parser + go/types over the module's
// packages) and exits 1 on any finding, 2 on load/type errors.
//
// Usage:
//
//	rtlint [-dir module-root] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rtoffload/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "module root to analyze")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtlint:", err)
		os.Exit(2)
	}
	targets := analysis.DefaultTargets()
	var diags []analysis.Diagnostic
	for _, pkg := range mod.Packages {
		diags = append(diags, analysis.RunPackage(pkg, targets)...)
	}
	for _, d := range diags {
		// Report module-relative paths so output is stable across
		// checkouts.
		if rel, err := filepath.Rel(mod.Dir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rtlint: %d finding(s) across %d package(s)\n", len(diags), len(mod.Packages))
		os.Exit(1)
	}
}
