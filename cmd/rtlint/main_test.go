package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildRtlint compiles the linter once into a temp dir and returns
// the binary path.
func buildRtlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rtlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building rtlint: %v\n%s", err, out)
	}
	return bin
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolations runs the built linter against a temp module
// holding one violation per analyzer and asserts the exact
// diagnostics and the nonzero exit code.
func TestSeededViolations(t *testing.T) {
	bin := buildRtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/exp/exp.go": `package exp

import (
	"fmt"
	"io"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Dump(w io.Writer, m map[int]string) {
	for k, v := range m {
		fmt.Fprintf(w, "%d=%s\n", k, v)
	}
}
`,
		"internal/dbf/dbf.go": `package dbf

func Demand(n, c int64) int64 { return n * c }

func Feasible(a, b float64) bool { return a == b }
`,
	})

	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got err=%v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}

	text := string(out)
	for _, want := range []string{
		"internal/exp/exp.go:9:34: [determinism] time.Now reads the wall clock",
		"internal/exp/exp.go:12:2: [determinism] map iteration order is nondeterministic",
		"internal/exp/exp.go:13:3: [errsink] error result of fmt.Fprintf discarded",
		"internal/dbf/dbf.go:3:42: [overflowguard] unchecked int64 multiplication",
		"internal/dbf/dbf.go:5:45: [floatexact] float comparison in exact-arithmetic code",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "rtlint: 5 finding(s)") {
		t.Errorf("output missing summary line\noutput:\n%s", text)
	}
}

// TestCleanModule asserts a module whose only wall-clock read carries
// a used directive exits 0 with no findings.
func TestCleanModule(t *testing.T) {
	bin := buildRtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"cmd/tool/main.go": `package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback
	work()
	//rtlint:allow determinism -- wall-clock timer for operator feedback
	elapsed := time.Since(start)
	if _, err := fmt.Fprintln(os.Stderr, elapsed); err != nil {
		os.Exit(1)
	}
}

func work() {}
`,
	})

	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("want exit 0, got %v\n%s", err, out)
	}
	if strings.Contains(string(out), "[") {
		t.Errorf("unexpected findings:\n%s", out)
	}
}

// TestSeededInterproceduralViolations seeds one violation per module
// analyzer — an allocation on a hot path, an unlocked guarded-field
// access, an arena alias escaping an exported API — and asserts the
// driver reports all three and exits 1.
func TestSeededInterproceduralViolations(t *testing.T) {
	bin := buildRtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/hot/hot.go": `package hot

//rtlint:hotpath -- seeded gate root
func Loop() {
	for i := 0; i < 8; i++ {
		sink(make([]int, i))
	}
}

func sink(s []int) {}
`,
		"internal/gd/gd.go": `package gd

import "sync"

type box struct {
	mu sync.Mutex
	//rtlint:guardedby mu
	n int
}

func bump(b *box) {
	b.n++
}

func locked(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}
`,
		"internal/ar/ar.go": `package ar

type pool struct {
	//rtlint:arena
	buf []int
}

func (p *pool) Expose() []int {
	return p.buf
}
`,
	})

	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got err=%v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"[hotalloc] make allocates (hot path from root hot.Loop)",
		"[guardedby] access to guarded field b.n requires b.mu held",
		"[arenaescape] arena-aliasing value returned from exported Expose escapes its owner",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\noutput:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "rtlint: 3 finding(s)") {
		t.Errorf("output missing summary line\noutput:\n%s", text)
	}
}

// TestLoadErrorExitCode asserts a module that fails to type-check is a
// usage-class failure (exit 2), distinct from findings (exit 1).
func TestLoadErrorExitCode(t *testing.T) {
	bin := buildRtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/broken/broken.go": `package broken

func f() int { return undefinedName }
`,
	})

	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "rtlint:") {
		t.Errorf("load failure did not report an error:\n%s", out)
	}
}

// TestBadFlagExitCode asserts flag-parse failures exit 2.
func TestBadFlagExitCode(t *testing.T) {
	bin := buildRtlint(t)
	out, err := exec.Command(bin, "-no-such-flag").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2, got err=%v\n%s", err, out)
	}
}

// TestMissingDirExitCode asserts a nonexistent module root exits 2.
func TestMissingDirExitCode(t *testing.T) {
	bin := buildRtlint(t)
	out, err := exec.Command(bin, "-dir", filepath.Join(t.TempDir(), "nope")).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2, got err=%v\n%s", err, out)
	}
}

// TestStaleDirectiveFails asserts an unused directive is itself a
// finding: exemptions cannot rot silently.
func TestStaleDirectiveFails(t *testing.T) {
	bin := buildRtlint(t)
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/core/core.go": `package core

//rtlint:allow determinism -- nothing here needs it
func Pure(x int) int { return x + 1 }
`,
	})

	out, err := exec.Command(bin, "-dir", dir).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "suppresses nothing") {
		t.Errorf("output missing stale-directive finding:\n%s", out)
	}
}
