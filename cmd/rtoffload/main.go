// Command rtoffload analyzes, decides and simulates offloading
// configurations for JSON task sets.
//
// Subcommands:
//
//	rtoffload gen [-seed N] [-n N] > tasks.json
//	    Generate a random task set (the paper's §6.2 generator).
//
//	rtoffload analyze tasks.json
//	    Print per-task parameters, the all-local utilization and the
//	    exact schedulability verdicts.
//
//	rtoffload decide [-solver core|dp|heu|brute|greedy] tasks.json
//	    Run the Offloading Decision Manager and print the selected
//	    configuration with its Theorem-3 total.
//
//	rtoffload simulate [-solver ...] [-horizon SECONDS] [-scenario busy|not-busy|idle|lost|cdf]
//	          [-onmiss continue|abort] [-gantt MS] [-exact] [-decision file] [-seed N] tasks.json
//	    Decide (or replay a saved decision), then run the EDF simulator
//	    against the chosen server model and report per-task outcome
//	    statistics, optionally with an ASCII Gantt chart.
//
//	rtoffload partition [-cores N] [-strategy worst-fit|first-fit|best-fit] [-solver ...] tasks.json
//	    Partition the set over identical cores and run the per-core
//	    Offloading Decision Manager.
package main

import (
	"flag"
	"fmt"
	"os"

	"rtoffload/internal/benefit"
	"rtoffload/internal/core"
	"rtoffload/internal/dbf"
	"rtoffload/internal/exp"
	"rtoffload/internal/partition"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
	"rtoffload/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "decide":
		err = cmdDecide(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "partition":
		err = cmdPartition(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtoffload:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rtoffload gen|analyze|decide|simulate|partition [flags] [tasks.json]")
	os.Exit(2)
}

func cmdPartition(args []string) error {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	solver := solverFlag(fs)
	cores := fs.Int("cores", 2, "number of identical processors")
	strategy := fs.String("strategy", "worst-fit", "placement: worst-fit | first-fit | best-fit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sv, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	var strat partition.Strategy
	switch *strategy {
	case "worst-fit":
		strat = partition.WorstFit
	case "first-fit":
		strat = partition.FirstFit
	case "best-fit":
		strat = partition.BestFit
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	set, err := loadSet(fs.Args())
	if err != nil {
		return err
	}
	dec, err := partition.Decide(set, partition.Options{
		Cores: *cores, Strategy: strat, Core: core.Options{Solver: sv},
	})
	if err != nil {
		return err
	}
	var rows [][]string
	for c, pc := range dec.PerCore {
		if pc == nil {
			rows = append(rows, []string{fmt.Sprintf("%d", c), "0", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%d", len(pc.Choices)),
			fmt.Sprintf("%d", pc.OffloadedCount()),
			pc.Theorem3Total.FloatString(4),
			fmt.Sprintf("%.4g", pc.TotalExpected),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"Core", "Tasks", "Offloaded", "Theorem3", "Expected"}, rows); err != nil {
		return err
	}
	fmt.Printf("\n%d cores, %v placement: offloaded %d tasks, total expected benefit %.4f\n",
		*cores, strat, dec.OffloadedCount(), dec.TotalExpected)
	return nil
}

func loadSet(args []string) (task.Set, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expected exactly one task-set file, got %d args", len(args))
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return task.ReadJSON(f)
}

func solverFlag(fs *flag.FlagSet) *string {
	return fs.String("solver", "dp", "decision solver: dp | heu | brute | greedy | bnb | core | server-faster")
}

func parseSolver(s string) (core.Solver, error) {
	switch s {
	case "dp":
		return core.SolverDP, nil
	case "heu":
		return core.SolverHEU, nil
	case "brute":
		return core.SolverBrute, nil
	case "greedy":
		return core.SolverGreedy, nil
	case "bnb":
		return core.SolverBnB, nil
	case "core":
		return core.SolverCore, nil
	case "server-faster":
		return core.SolverServerFaster, nil
	default:
		return 0, fmt.Errorf("unknown solver %q", s)
	}
}

// decide runs the selected decision procedure, optionally upgrading
// with the exact processor-demand test.
func decide(set task.Set, solver core.Solver, exact bool) (*core.Decision, error) {
	var dec *core.Decision
	var err error
	if solver == core.SolverServerFaster {
		dec, err = core.DecideServerFaster(set)
	} else {
		dec, err = core.Decide(set, core.Options{Solver: solver})
	}
	if err != nil {
		return nil, err
	}
	if exact && solver != core.SolverServerFaster {
		return core.ImproveWithExact(dec, set)
	}
	return dec, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "generator seed")
	n := fs.Int("n", 30, "number of tasks")
	kind := fs.String("kind", "fig3", "generator: fig3 (paper §6.2) | random (UUniFast)")
	util := fs.Float64("util", 0.6, "total local utilization for -kind random")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var set task.Set
	var err error
	switch *kind {
	case "fig3":
		p := task.DefaultFigure3Params()
		p.N = *n
		set, err = task.GenerateFigure3(stats.NewRNG(*seed), p)
	case "random":
		p := task.DefaultRandomSetParams()
		p.N = *n
		p.TotalUtil = *util
		set, err = task.GenerateRandomSet(stats.NewRNG(*seed), p)
	default:
		return fmt.Errorf("unknown generator %q", *kind)
	}
	if err != nil {
		return err
	}
	return set.WriteJSON(os.Stdout)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := loadSet(fs.Args())
	if err != nil {
		return err
	}
	var rows [][]string
	var loc []dbf.Sporadic
	for _, t := range set {
		s, err := dbf.NewSporadic(t.LocalWCET, t.Deadline, t.Period)
		if err != nil {
			return err
		}
		loc = append(loc, s)
		rows = append(rows, []string{
			fmt.Sprintf("%d", t.ID),
			t.Name,
			t.LocalWCET.String(),
			t.Setup.String(),
			t.Compensation.String(),
			t.Deadline.String(),
			t.Period.String(),
			fmt.Sprintf("%d", len(t.Levels)),
			t.Utilization().FloatString(4),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"ID", "Name", "C", "C1", "C2", "D", "T", "Levels", "C/T"}, rows); err != nil {
		return err
	}
	u := set.TotalUtilization()
	fmt.Printf("\nall-local utilization: %s\n", u.FloatString(4))
	total, ok := dbf.Theorem3(nil, loc)
	fmt.Printf("Theorem 3 (all-local): total %s, schedulable: %v\n", total.FloatString(4), ok)
	ds := make([]dbf.Demand, len(loc))
	for i, s := range loc {
		ds[i] = s
	}
	az, err := dbf.NewAnalyzer(ds)
	if err != nil {
		return err
	}
	if err := az.Feasible(); err != nil {
		fmt.Printf("exact QPA test (all-local): REJECTED: %v\n", err)
	} else {
		fmt.Println("exact QPA test (all-local): passed")
	}
	return nil
}

func cmdDecide(args []string) error {
	fs := flag.NewFlagSet("decide", flag.ExitOnError)
	solver := solverFlag(fs)
	exact := fs.Bool("exact", false, "upgrade the decision with the exact QPA admission test")
	out := fs.String("o", "", "also write the decision as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sv, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	set, err := loadSet(fs.Args())
	if err != nil {
		return err
	}
	dec, err := decide(set, sv, *exact)
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := dec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range dec.Choices {
		mode := "local"
		budget := "-"
		if c.Offload {
			mode = fmt.Sprintf("offload L%d", c.Level+1)
			budget = c.Budget().String()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Task.ID), c.Task.Name, mode, budget,
			fmt.Sprintf("%.4g", c.Expected),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"ID", "Name", "Decision", "Ri", "Expected"}, rows); err != nil {
		return err
	}
	fmt.Printf("\nsolver: %v   offloaded: %d/%d   expected benefit: %.4f\n",
		dec.Solver, dec.OffloadedCount(), len(dec.Choices), dec.TotalExpected)
	switch {
	case dec.ExactVerified:
		fmt.Printf("Theorem 3 total: %s — feasibility certified by the exact QPA test\n", dec.Theorem3Total.FloatString(6))
	case dec.Solver == core.SolverServerFaster:
		fmt.Printf("Theorem 3 total: %s — baseline runs NO schedulability test\n", dec.Theorem3Total.FloatString(6))
	default:
		fmt.Printf("Theorem 3 total: %s (≤ 1 guaranteed)\n", dec.Theorem3Total.FloatString(6))
	}
	if dec.Repaired > 0 {
		fmt.Printf("repaired choices: %d\n", dec.Repaired)
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	solver := solverFlag(fs)
	horizon := fs.Float64("horizon", 10, "simulation horizon in seconds")
	scenario := fs.String("scenario", "cdf", "server model: cdf | busy | not-busy | idle | lost")
	seed := fs.Uint64("seed", 1, "simulation seed")
	gantt := fs.Int("gantt", 0, "render an ASCII Gantt chart of the first N milliseconds")
	exact := fs.Bool("exact", false, "upgrade the decision with the exact QPA admission test")
	onMiss := fs.String("onmiss", "continue", "overrun policy: continue | abort")
	decisionFile := fs.String("decision", "", "replay a saved decision instead of deciding")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var missPolicy sched.MissPolicy
	switch *onMiss {
	case "continue":
		missPolicy = sched.ContinueLate
	case "abort":
		missPolicy = sched.AbortAtDeadline
	default:
		return fmt.Errorf("unknown overrun policy %q", *onMiss)
	}
	sv, err := parseSolver(*solver)
	if err != nil {
		return err
	}
	set, err := loadSet(fs.Args())
	if err != nil {
		return err
	}
	var dec *core.Decision
	if *decisionFile != "" {
		f, err := os.Open(*decisionFile)
		if err != nil {
			return err
		}
		dec, err = core.ReadDecisionJSON(f, set)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		dec, err = decide(set, sv, *exact)
		if err != nil {
			return err
		}
	}
	rng := stats.NewRNG(*seed)
	var srv server.Server
	switch *scenario {
	case "cdf":
		// Ground truth follows each task's own benefit CDF — only
		// meaningful when benefits are probabilities.
		samplers := map[int]server.ResponseSampler{}
		for _, t := range set {
			if t.Offloadable() && benefit.FromTask(t).ValidProbability() {
				samplers[t.ID] = benefit.FromTask(t)
			}
		}
		if len(samplers) == 0 {
			return fmt.Errorf("cdf scenario needs probability-valued benefit functions; try -scenario idle")
		}
		srv = server.NewCDF(rng.Fork(), samplers)
	case "busy":
		srv, err = server.NewScenario(rng.Fork(), server.Busy)
	case "not-busy":
		srv, err = server.NewScenario(rng.Fork(), server.NotBusy)
	case "idle":
		srv, err = server.NewScenario(rng.Fork(), server.Idle)
	case "lost":
		srv = server.Fixed{Lost: true}
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}
	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Server:      srv,
		Horizon:     rtime.FromSeconds(*horizon),
		RecordTrace: *gantt > 0,
		OnMiss:      missPolicy,
	})
	if err != nil {
		return err
	}
	if *gantt > 0 {
		if err := trace.RenderGantt(os.Stdout, res.Trace, 0,
			rtime.Instant(rtime.FromMillis(int64(*gantt))), 100); err != nil {
			return err
		}
		fmt.Println()
	}
	var rows [][]string
	for _, c := range dec.Choices {
		st := res.PerTask[c.Task.ID]
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Task.ID), c.Task.Name,
			fmt.Sprintf("%d", st.Released),
			fmt.Sprintf("%d", st.Hits),
			fmt.Sprintf("%d", st.Compensations),
			fmt.Sprintf("%d", st.LocalRuns),
			fmt.Sprintf("%d", st.Misses),
			st.WorstLatency.String(),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"ID", "Name", "Jobs", "Hits", "Comps", "Local", "Misses", "WorstResp"}, rows); err != nil {
		return err
	}
	fmt.Printf("\nhorizon %gs   scenario %s   deadline misses: %d\n", *horizon, *scenario, res.Misses)
	fmt.Printf("total weighted benefit: %.4f (baseline %.4f, normalized %.4f)\n",
		res.TotalBenefit, res.TotalBaseline, res.NormalizedBenefit())
	return nil
}
