// Command admitd runs the online admission-control service.
//
// Usage:
//
//	admitd [-addr :8080] [-solver dp|heu|bnb|core] [-exact] [-fleet SPEC]   serve HTTP
//	admitd -bench [-tenants N] [-ops N] [-seed N] [-maxlive N]              sustained-load benchmark
//
// With -fleet, every tenant's choice sets span (server, budget) pairs
// of the given fleet (see internal/fleet.ParseSpec for the spec
// grammar) and each decision view reports the routed server per task.
//
// In serve mode, tenants stream admit/update/evict requests over the
// JSON API (see internal/admitd.Handler) and every re-decision rides
// the incremental analyzer. In bench mode, the configured number of
// concurrent deterministic churn streams drive the service in-process
// and the run reports admissions/sec, p50/p99 decision latency, and
// allocation rate.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"rtoffload/internal/admitd"
	"rtoffload/internal/core"
	"rtoffload/internal/fleet"
)

func main() {
	if err := Run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "admitd:", err)
		os.Exit(1)
	}
}

// Run executes the command against w, so tests can check the exact
// bytes it prints.
func Run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("admitd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address (serve mode)")
		solver  = fs.String("solver", "dp", "MCKP solver: dp, heu, bnb, or core")
		exact   = fs.Bool("exact", true, "run the exact-upgrade pass on every re-decision")
		bench   = fs.Bool("bench", false, "run the sustained-load benchmark instead of serving")
		tenants = fs.Int("tenants", 8, "concurrent churn streams (bench mode)")
		ops     = fs.Int("ops", 500, "operations per tenant (bench mode)")
		seed    = fs.Uint64("seed", 7, "deterministic churn seed (bench mode)")
		maxlive = fs.Int("maxlive", 0, "admitted-task cap per tenant (0 = default)")
		flSpec  = fs.String("fleet", "",
			`multi-server fleet spec, e.g. "edge:cap=1/2;cloud:scale=3/2,rel=0.9" (empty = single server)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := core.Options{ExactUpgrade: *exact}
	if *flSpec != "" {
		fl, err := fleet.ParseSpec(*flSpec)
		if err != nil {
			return err
		}
		opts.Fleet = fl
	}
	switch *solver {
	case "dp":
		opts.Solver = core.SolverDP
	case "heu":
		opts.Solver = core.SolverHEU
	case "bnb":
		opts.Solver = core.SolverBnB
	case "core":
		opts.Solver = core.SolverCore
	default:
		return fmt.Errorf("unknown solver %q (want dp, heu, bnb, or core)", *solver)
	}

	s := admitd.New(opts)
	if *bench {
		rep, err := admitd.RunLoad(s, admitd.LoadConfig{
			Tenants: *tenants, Ops: *ops, Seed: *seed, MaxLive: *maxlive,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "solver           %s (exact=%v)\n", opts.Solver, opts.ExactUpgrade)
		_, err = io.WriteString(w, rep.String())
		return err
	}

	fmt.Fprintf(os.Stderr, "admitd: serving on %s (solver=%s exact=%v)\n", *addr, opts.Solver, opts.ExactUpgrade)
	return http.ListenAndServe(*addr, s.Handler())
}
