// Command benchjson converts `go test -bench` text output (read on
// stdin) into a stable JSON document for checked-in benchmark records
// such as BENCH_2.json.
//
// Usage:
//
//	go test -bench=... -benchmem -count=5 . | benchjson [-label NAME] [-merge FILE] > out.json
//
// Each benchmark's runs are aggregated (mean over -count repetitions);
// the per-metric unit strings from the benchmark line (ns/op, B/op,
// allocs/op and any custom b.ReportMetric units) are preserved. With
// -merge, the existing JSON document is read first and the new entry
// is appended to its entries list — that is how a before/after record
// accumulates baselines alongside current numbers. The raw benchmark
// text stays benchstat-friendly; keep it next to the JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one aggregated benchmark: metric name → mean value over
// all runs of that benchmark in the input.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int                `json:"runs"`
	Iters   int64              `json:"iterations_per_run_mean"`
	Metrics map[string]float64 `json:"metrics"`
}

// Entry is one labeled benchmark session (e.g. "baseline" or
// "current"), holding every benchmark parsed from one input.
type Entry struct {
	Label      string      `json:"label"`
	GoMaxProcs int         `json:"gomaxprocs,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the merged on-disk record.
type Document struct {
	Entries []Entry `json:"entries"`
}

func main() {
	var (
		label = flag.String("label", "current", "label for this benchmark session")
		merge = flag.String("merge", "", "existing JSON document to append to")
	)
	flag.Parse()

	entry, err := parse(os.Stdin, *label)
	if err != nil {
		fatal(err)
	}
	var doc Document
	if *merge != "" {
		raw, err := os.ReadFile(*merge)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			fatal(fmt.Errorf("benchjson: %s: %w", *merge, err))
		}
	}
	doc.Entries = append(doc.Entries, entry)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

// parse reads `go test -bench` output: benchmark lines look like
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// with alternating value/unit pairs after the iteration count.
func parse(f *os.File, label string) (Entry, error) {
	type agg struct {
		runs  int
		iters int64
		sums  map[string]float64
	}
	aggs := map[string]*agg{}
	var order []string
	entry := Entry{Label: label}

	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if procs, err := strconv.Atoi(name[i+1:]); err == nil {
				entry.GoMaxProcs = procs
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or summary line
		}
		a := aggs[name]
		if a == nil {
			a = &agg{sums: map[string]float64{}}
			aggs[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Entry{}, fmt.Errorf("benchjson: bad value %q in %q", fields[i], sc.Text())
			}
			a.sums[fields[i+1]] += v
		}
	}
	if err := sc.Err(); err != nil {
		return Entry{}, err
	}
	if len(order) == 0 {
		return Entry{}, fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	sort.Strings(order)
	for _, name := range order {
		a := aggs[name]
		b := Benchmark{Name: name, Runs: a.runs, Iters: a.iters / int64(a.runs),
			Metrics: map[string]float64{}}
		for unit, sum := range a.sums {
			b.Metrics[unit] = sum / float64(a.runs)
		}
		entry.Benchmarks = append(entry.Benchmarks, b)
	}
	return entry, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
