// Command accuracysim regenerates the paper's Figure 3: the normalized
// total benefit achieved by the DP and HEU-OE deciders when the
// Benefit and Response Time Estimator suffers an estimation-accuracy
// ratio x, i.e. it sees G((1+x)·ri) instead of G(ri).
//
// Usage:
//
//	accuracysim [-seed N] [-parallel N] [-trials N] [-simulate] [-csv]
//
// Trials fan out on -parallel workers; the sweep is bit-identical for
// every worker count, so -parallel only changes the wall clock, which
// is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtoffload/internal/core"
	"rtoffload/internal/exp"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "deterministic experiment seed")
		par      = flag.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		trials   = flag.Int("trials", 20, "random 30-task sets averaged per ratio")
		simulate = flag.Bool("simulate", false, "additionally validate each decision in the EDF simulator")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		interp   = flag.String("interp", "budget-shift", "error model: budget-shift | value-shift (two readings of G((1+x)·ri))")
		chart    = flag.Bool("chart", false, "also draw Figure 3 as an ASCII chart")
	)
	flag.Parse()

	cfg := exp.DefaultFigure3Config()
	cfg.Seed = *seed
	cfg.Parallel = *par
	cfg.Trials = *trials
	cfg.Simulate = *simulate
	switch *interp {
	case "budget-shift":
		cfg.Interpretation = exp.BudgetShift
	case "value-shift":
		cfg.Interpretation = exp.ValueShift
	default:
		fmt.Fprintf(os.Stderr, "accuracysim: unknown interpretation %q\n", *interp)
		os.Exit(2)
	}

	start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
	res, err := exp.Figure3(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "accuracysim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "accuracysim: sweep wall-clock %.2fs (parallel=%d)\n",
		time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
	fmt.Printf("Figure 3: normalized total benefit vs estimation accuracy ratio (%d trials, normalized to DP at x=0)\n", cfg.Trials)
	if *csv {
		var rows [][]string
		dp := res.Series(core.SolverDP)
		heu := res.Series(core.SolverHEU)
		for i, x := range cfg.Ratios {
			rows = append(rows, []string{
				fmt.Sprintf("%g", x), fmt.Sprintf("%.4f", dp[i]), fmt.Sprintf("%.4f", heu[i]),
			})
		}
		if err := exp.WriteCSV(os.Stdout, []string{"x", "dp", "heu"}, rows); err != nil {
			fmt.Fprintln(os.Stderr, "accuracysim:", err)
			os.Exit(1)
		}
		return
	}
	if err := exp.RenderFigure3(os.Stdout, res); err != nil {
		fmt.Fprintln(os.Stderr, "accuracysim:", err)
		os.Exit(1)
	}
	if *chart {
		fmt.Println()
		if err := exp.ChartFigure3(os.Stdout, res, cfg.Ratios, 14); err != nil {
			fmt.Fprintln(os.Stderr, "accuracysim:", err)
			os.Exit(1)
		}
	}
	if *simulate {
		fmt.Println("\nsimulation-validated values (in-time fraction scoring):")
		for _, p := range res.Points {
			fmt.Printf("x=%+.1f %-10s analytic %.4f simulated %.4f\n", p.Ratio, p.Solver, p.Normalized, p.SimNormalized)
		}
	}
}
