// Command accuracysim regenerates the paper's Figure 3: the normalized
// total benefit achieved by the DP and HEU-OE deciders when the
// Benefit and Response Time Estimator suffers an estimation-accuracy
// ratio x, i.e. it sees G((1+x)·ri) instead of G(ri).
//
// Usage:
//
//	accuracysim [-seed N] [-parallel N] [-trials N] [-simulate] [-csv]
//
// Trials fan out on -parallel workers; the sweep is bit-identical for
// every worker count, so -parallel only changes the wall clock, which
// is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rtoffload/internal/core"
	"rtoffload/internal/exp"
)

func main() {
	if err := Run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "accuracysim:", err)
		os.Exit(1)
	}
}

// Run executes the driver against w, so tests can golden-check the
// exact bytes the command prints. Operator feedback (wall-clock
// timing) still goes to stderr.
func Run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("accuracysim", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 1, "deterministic experiment seed")
		par      = fs.Int("parallel", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		trials   = fs.Int("trials", 20, "random 30-task sets averaged per ratio")
		simulate = fs.Bool("simulate", false, "additionally validate each decision in the EDF simulator")
		csv      = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		interp   = fs.String("interp", "budget-shift", "error model: budget-shift | value-shift (two readings of G((1+x)·ri))")
		chart    = fs.Bool("chart", false, "also draw Figure 3 as an ASCII chart")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := exp.DefaultFigure3Config()
	cfg.Seed = *seed
	cfg.Parallel = *par
	cfg.Trials = *trials
	cfg.Simulate = *simulate
	switch *interp {
	case "budget-shift":
		cfg.Interpretation = exp.BudgetShift
	case "value-shift":
		cfg.Interpretation = exp.ValueShift
	default:
		return fmt.Errorf("unknown interpretation %q", *interp)
	}

	start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
	res, err := exp.Figure3(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "accuracysim: sweep wall-clock %.2fs (parallel=%d)\n",
		time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
	fmt.Fprintf(w, "Figure 3: normalized total benefit vs estimation accuracy ratio (%d trials, normalized to DP at x=0)\n", cfg.Trials)
	if *csv {
		var rows [][]string
		dp := res.Series(core.SolverDP)
		heu := res.Series(core.SolverHEU)
		for i, x := range cfg.Ratios {
			rows = append(rows, []string{
				fmt.Sprintf("%g", x), fmt.Sprintf("%.4f", dp[i]), fmt.Sprintf("%.4f", heu[i]),
			})
		}
		return exp.WriteCSV(w, []string{"x", "dp", "heu"}, rows)
	}
	if err := exp.RenderFigure3(w, res); err != nil {
		return err
	}
	if *chart {
		fmt.Fprintln(w)
		if err := exp.ChartFigure3(w, res, cfg.Ratios, 14); err != nil {
			return err
		}
	}
	if *simulate {
		fmt.Fprintln(w, "\nsimulation-validated values (in-time fraction scoring):")
		for _, p := range res.Points {
			fmt.Fprintf(w, "x=%+.1f %-10s analytic %.4f simulated %.4f\n", p.Ratio, p.Solver, p.Normalized, p.SimNormalized)
		}
	}
	return nil
}
