package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestRunGolden locks the driver's exact stdout bytes. Refresh with
//
//	go test ./cmd/accuracysim -run TestRunGolden -update
func TestRunGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"default", []string{"-trials", "2"}},
		{"csv", []string{"-trials", "2", "-csv"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, tc.args); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("stdout differs from %s (refresh with -update if intended)\ngot:\n%s", golden, buf.String())
			}
		})
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"-interp", "nope"}); err == nil {
		t.Error("unknown interpretation accepted")
	}
	if err := Run(&buf, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
