package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestRunGolden locks the driver's exact stdout bytes. Refresh with
//
//	go test ./cmd/casestudy -run TestRunGolden -update
func TestRunGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"table1", []string{"-table1"}},
		{"figure2", []string{"-figure2", "-horizon", "2"}},
		{"figure2-chaos", []string{"-figure2", "-horizon", "2", "-chaos", "moderate"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, tc.args); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("stdout differs from %s (refresh with -update if intended)\ngot:\n%s", golden, buf.String())
			}
		})
	}
}

// TestRunRejectsBadFlags keeps the error paths honest.
func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"-solver", "nope"}); err == nil {
		t.Error("unknown solver accepted")
	}
	if err := Run(&buf, []string{"-chaos", "nope"}); err == nil {
		t.Error("unknown chaos preset accepted")
	}
	if err := Run(&buf, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
