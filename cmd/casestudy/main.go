// Command casestudy regenerates the paper's case-study artifacts:
// Table 1 (the benefit functions of the four robot-vision tasks) and
// Figure 2 (normalized total weighted image quality over 24 work sets
// under three server scenarios).
//
// Usage:
//
//	casestudy [-seed N] [-parallel N] [-horizon SECONDS] [-solver dp|heu] [-csv] [-table1] [-figure2]
//	          [-chaos SPEC] [-cpuprofile FILE] [-memprofile FILE]
//
// With neither -table1 nor -figure2, both are produced. -chaos wraps
// every simulated server in the fault injector (internal/chaos); the
// spec is a preset (off|mild|moderate|heavy) optionally followed by
// key=value overrides, e.g. "moderate,drop=0.2". The sweeps fan out on
// -parallel workers; the output is bit-identical for every worker
// count (per-run seeds are derived, not drawn in sequence), so
// -parallel only changes the wall clock, which is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rtoffload/internal/chaos"
	"rtoffload/internal/core"
	"rtoffload/internal/exp"
	"rtoffload/internal/prof"
	"rtoffload/internal/server"
)

func main() {
	if err := Run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "casestudy:", err)
		os.Exit(1)
	}
}

// Run executes the driver against w, so tests can golden-check the
// exact bytes the command prints. Operator feedback (wall-clock
// timing) still goes to stderr.
func Run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("casestudy", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 1, "deterministic experiment seed")
		par       = fs.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		horizon   = fs.Float64("horizon", 10, "measurement window in seconds (paper: 10)")
		solver    = fs.String("solver", "dp", "decision solver: dp | heu")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		t1        = fs.Bool("table1", false, "produce Table 1 only")
		f2        = fs.Bool("figure2", false, "produce Figure 2 only")
		multi     = fs.Int("multiseed", 0, "additionally report Figure-2 scenario means over N seeds with 95% CIs")
		latency   = fs.Bool("latency", false, "produce the per-task response-time profile instead")
		chart     = fs.Bool("chart", false, "also draw Figure 2 as an ASCII chart")
		chaosSpec = fs.String("chaos", "", "fault-injection spec: preset (off|mild|moderate|heavy) and/or key=value overrides")
		cpu       = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mem       = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpu, *mem)
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := exp.DefaultCaseStudyConfig()
	cfg.Seed = *seed
	cfg.Parallel = *par
	cfg.HorizonSeconds = *horizon
	switch *solver {
	case "dp":
		cfg.Solver = core.SolverDP
	case "heu":
		cfg.Solver = core.SolverHEU
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}
	if cfg.Chaos, err = chaos.ParseConfig(*chaosSpec); err != nil {
		return err
	}
	if *latency {
		rows, err := exp.LatencyStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Response-time profile per scenario (all worst cases bounded by the deadlines):")
		return exp.RenderLatency(w, rows)
	}
	doTable := *t1 || !*f2
	doFigure := *f2 || !*t1

	if doTable {
		rows, err := exp.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Table 1: construction of Gi(ri) (PSNR benefit per probed response budget)")
		if *csv {
			var out [][]string
			for _, r := range rows {
				cells := []string{r.Task, fmt.Sprintf("%.4f", r.LocalPSNR)}
				for j := range r.Budgets {
					cells = append(cells, fmt.Sprintf("%.3f", r.Budgets[j].Millis()), fmt.Sprintf("%.4f", r.PSNRs[j]))
				}
				out = append(out, cells)
			}
			if err := exp.WriteCSV(w, []string{"task", "G0", "r2", "G2", "r3", "G3", "r4", "G4", "r5", "G5"}, out); err != nil {
				return err
			}
		} else if err := exp.RenderTable1(w, rows); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if doFigure {
		start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
		res, err := exp.Figure2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "casestudy: figure-2 sweep wall-clock %.2fs (parallel=%d)\n",
			time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
		fmt.Fprintf(w, "Figure 2: normalized total weighted image quality, %gs horizon (normalized to the all-local baseline)\n", cfg.HorizonSeconds)
		if err := exp.RenderFigure2(w, res); err != nil {
			return err
		}
		if *chart {
			fmt.Fprintln(w)
			if err := exp.ChartFigure2(w, res, 16); err != nil {
				return err
			}
		}
		for _, s := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
			series := res.Series(s)
			sum := 0.0
			for _, v := range series {
				sum += v
			}
			fmt.Fprintf(w, "scenario %-8s mean %.3f\n", s, sum/float64(len(series)))
		}
		misses := 0
		for _, p := range res.Points {
			misses += p.Misses
		}
		fmt.Fprintf(w, "deadline misses across all runs: %d\n", misses)
		if *multi > 0 {
			start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
			rows, err := exp.Figure2Multi(cfg, *multi)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "casestudy: multiseed wall-clock %.2fs (parallel=%d)\n",
				time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
			fmt.Fprintf(w, "\nscenario means over %d seeds (Student-t 95%% CI):\n", *multi)
			for _, r := range rows {
				fmt.Fprintf(w, "  %-9s %.3f ± %.3f\n", r.Scenario, r.Mean, r.CI95)
			}
		}
	}
	return nil
}
