// Command casestudy regenerates the paper's case-study artifacts:
// Table 1 (the benefit functions of the four robot-vision tasks) and
// Figure 2 (normalized total weighted image quality over 24 work sets
// under three server scenarios).
//
// Usage:
//
//	casestudy [-seed N] [-parallel N] [-horizon SECONDS] [-solver dp|heu] [-csv] [-table1] [-figure2]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// With neither -table1 nor -figure2, both are produced. The sweeps
// fan out on -parallel workers; the output is bit-identical for every
// worker count (per-run seeds are derived, not drawn in sequence), so
// -parallel only changes the wall clock, which is reported on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtoffload/internal/core"
	"rtoffload/internal/exp"
	"rtoffload/internal/prof"
	"rtoffload/internal/server"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "deterministic experiment seed")
		par     = flag.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		horizon = flag.Float64("horizon", 10, "measurement window in seconds (paper: 10)")
		solver  = flag.String("solver", "dp", "decision solver: dp | heu")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		t1      = flag.Bool("table1", false, "produce Table 1 only")
		f2      = flag.Bool("figure2", false, "produce Figure 2 only")
		multi   = flag.Int("multiseed", 0, "additionally report Figure-2 scenario means over N seeds with 95% CIs")
		latency = flag.Bool("latency", false, "produce the per-task response-time profile instead")
		chart   = flag.Bool("chart", false, "also draw Figure 2 as an ASCII chart")
		cpu     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mem     = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	if stopProf, err = prof.Start(*cpu, *mem); err != nil {
		fatal(err)
	}
	defer stopProf()

	cfg := exp.DefaultCaseStudyConfig()
	cfg.Seed = *seed
	cfg.Parallel = *par
	cfg.HorizonSeconds = *horizon
	switch *solver {
	case "dp":
		cfg.Solver = core.SolverDP
	case "heu":
		cfg.Solver = core.SolverHEU
	default:
		fmt.Fprintf(os.Stderr, "casestudy: unknown solver %q\n", *solver)
		os.Exit(2)
	}
	if *latency {
		rows, err := exp.LatencyStudy(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Response-time profile per scenario (all worst cases bounded by the deadlines):")
		if err := exp.RenderLatency(os.Stdout, rows); err != nil {
			fatal(err)
		}
		return
	}
	doTable := *t1 || !*f2
	doFigure := *f2 || !*t1

	if doTable {
		rows, err := exp.Table1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 1: construction of Gi(ri) (PSNR benefit per probed response budget)")
		if *csv {
			var out [][]string
			for _, r := range rows {
				cells := []string{r.Task, fmt.Sprintf("%.4f", r.LocalPSNR)}
				for j := range r.Budgets {
					cells = append(cells, fmt.Sprintf("%.3f", r.Budgets[j].Millis()), fmt.Sprintf("%.4f", r.PSNRs[j]))
				}
				out = append(out, cells)
			}
			if err := exp.WriteCSV(os.Stdout, []string{"task", "G0", "r2", "G2", "r3", "G3", "r4", "G4", "r5", "G5"}, out); err != nil {
				fatal(err)
			}
		} else if err := exp.RenderTable1(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if doFigure {
		start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
		res, err := exp.Figure2(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "casestudy: figure-2 sweep wall-clock %.2fs (parallel=%d)\n",
			time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
		fmt.Printf("Figure 2: normalized total weighted image quality, %gs horizon (normalized to the all-local baseline)\n", cfg.HorizonSeconds)
		if err := exp.RenderFigure2(os.Stdout, res); err != nil {
			fatal(err)
		}
		if *chart {
			fmt.Println()
			if err := exp.ChartFigure2(os.Stdout, res, 16); err != nil {
				fatal(err)
			}
		}
		for _, s := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
			series := res.Series(s)
			sum := 0.0
			for _, v := range series {
				sum += v
			}
			fmt.Printf("scenario %-8s mean %.3f\n", s, sum/float64(len(series)))
		}
		misses := 0
		for _, p := range res.Points {
			misses += p.Misses
		}
		fmt.Printf("deadline misses across all runs: %d\n", misses)
		if *multi > 0 {
			start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
			rows, err := exp.Figure2Multi(cfg, *multi)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "casestudy: multiseed wall-clock %.2fs (parallel=%d)\n",
				time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
			fmt.Printf("\nscenario means over %d seeds (Student-t 95%% CI):\n", *multi)
			for _, r := range rows {
				fmt.Printf("  %-9s %.3f ± %.3f\n", r.Scenario, r.Mean, r.CI95)
			}
		}
	}
}

// stopProf flushes the -cpuprofile/-memprofile outputs; fatal calls it
// so error exits still leave usable profiles behind.
var stopProf = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "casestudy:", err)
	stopProf()
	os.Exit(1)
}
