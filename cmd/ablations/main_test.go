package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestRunGolden locks the driver's exact stdout bytes. Refresh with
//
//	go test ./cmd/ablations -run TestRunGolden -update
func TestRunGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"default", []string{"-per", "3"}},
		{"chaos", []string{"-per", "3", "-chaos"}},
		{"fleet", []string{"-fleet", "-campaign", "2", "-campaign-tasks", "12"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, tc.args); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("stdout differs from %s (refresh with -update if intended)\ngot:\n%s", golden, buf.String())
			}
		})
	}
}

// TestChaosTableIsAdditive: -chaos must only append table F, leaving
// every byte of the default output in place.
func TestChaosTableIsAdditive(t *testing.T) {
	var plain, withChaos bytes.Buffer
	if err := Run(&plain, []string{"-per", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := Run(&withChaos, []string{"-per", "2", "-chaos"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(withChaos.Bytes(), plain.Bytes()) {
		t.Error("-chaos output does not extend the default output")
	}
	if !bytes.Contains(withChaos.Bytes(), []byte("F — fault robustness")) {
		t.Error("-chaos output lacks the robustness table")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := Run(&buf, []string{"-fleet"}); err == nil {
		t.Error("-fleet without -campaign accepted")
	}
}

// TestFleetCampaignCLIResume is the fleet twin of the CLI-level
// kill-and-resume check (the smoke-fleet CI target mirrors it).
func TestFleetCampaignCLIResume(t *testing.T) {
	args := []string{"-fleet", "-campaign", "2", "-campaign-tasks", "10", "-parallel", "2"}
	var fresh bytes.Buffer
	if err := Run(&fresh, args); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fresh.Bytes(), []byte("fleet scenarios")) {
		t.Fatalf("fleet campaign header missing:\n%s", fresh.String())
	}

	ckpt := filepath.Join(t.TempDir(), "fleet.jsonl")
	withCkpt := append(args, "-checkpoint", ckpt)
	var partial bytes.Buffer
	if err := Run(&partial, append(withCkpt, "-campaign-limit", "4")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(partial.Bytes(), []byte("campaign interrupted: 4/")) {
		t.Fatalf("limited fleet run did not report interruption:\n%s", partial.String())
	}
	var resumed bytes.Buffer
	if err := Run(&resumed, withCkpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), fresh.Bytes()) {
		t.Fatalf("resumed fleet output diverges from fresh run:\ngot:\n%s\nwant:\n%s",
			resumed.String(), fresh.String())
	}
}

// TestCampaignCLIResume is the CLI-level kill-and-resume check the CI
// smoke mirrors: interrupt via -campaign-limit, resume from the
// checkpoint, and the final stdout must equal a fresh uninterrupted
// run's byte for byte.
func TestCampaignCLIResume(t *testing.T) {
	args := []string{"-campaign", "3", "-campaign-tasks", "10", "-parallel", "2"}
	var fresh bytes.Buffer
	if err := Run(&fresh, args); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fresh.Bytes(), []byte("Campaign — ")) {
		t.Fatalf("campaign mode printed no table:\n%s", fresh.String())
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	withCkpt := append(args, "-checkpoint", ckpt)
	var partial bytes.Buffer
	if err := Run(&partial, append(withCkpt, "-campaign-limit", "4")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(partial.Bytes(), []byte("campaign interrupted: 4/")) {
		t.Fatalf("limited run did not report interruption:\n%s", partial.String())
	}
	var resumed bytes.Buffer
	if err := Run(&resumed, withCkpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), fresh.Bytes()) {
		t.Fatalf("resumed output diverges from fresh run:\ngot:\n%s\nwant:\n%s",
			resumed.String(), fresh.String())
	}
}
