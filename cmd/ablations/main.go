// Command ablations runs every design-choice ablation of DESIGN.md and
// prints the tables: deadline splitting vs naive EDF (A), MCKP solver
// quality (B), Theorem 3 vs exact demand analysis (C), EDF vs fixed
// priorities (D), the related-work greedy baseline (E), the
// client-energy study, and — with -chaos — the fault-robustness sweep
// (F).
//
// Usage:
//
//	ablations [-seed N] [-parallel N] [-per N] [-chaos] [-cpuprofile FILE] [-memprofile FILE]
//
// Generated systems fan out on -parallel workers; every table is
// bit-identical for every worker count, so -parallel only changes the
// wall clock, which is reported on stderr at the end.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rtoffload/internal/exp"
	"rtoffload/internal/prof"
)

func main() {
	if err := Run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(1)
	}
}

// Run executes the driver against w, so tests can golden-check the
// exact bytes the command prints. Operator feedback (wall-clock
// timing) still goes to stderr.
func Run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("ablations", flag.ContinueOnError)
	var (
		seed     = fs.Uint64("seed", 7, "deterministic seed")
		par      = fs.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		per      = fs.Int("per", 40, "systems per load level")
		withChao = fs.Bool("chaos", false, "additionally run the fault-robustness ablation (F)")
		cpu      = fs.String("cpuprofile", "", "write a CPU profile to this file")
		mem      = fs.String("memprofile", "", "write a heap profile to this file on exit")

		campaign = fs.Int("campaign", 0,
			"run ONLY the checkpointed fleet campaign over this many task sets (0 = off)")
		campTasks = fs.Int("campaign-tasks", 32, "tasks per campaign cell")
		checkp    = fs.String("checkpoint", "", "campaign checkpoint file (JSONL; enables resume)")
		campLimit = fs.Int("campaign-limit", 0,
			"stop the campaign after computing this many cells (interruption hook; 0 = run to completion)")
		fleetMode = fs.Bool("fleet", false,
			"campaign cells become multi-server fleet scenarios (hot, skew, degrade, failover, …); requires -campaign")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpu, *mem)
	if err != nil {
		return err
	}
	defer stopProf()

	if *campaign > 0 {
		cfg := exp.CampaignConfig{
			Seed:       *seed,
			TaskSets:   *campaign,
			Tasks:      *campTasks,
			Parallel:   *par,
			Checkpoint: *checkp,
			Limit:      *campLimit,
		}
		if *fleetMode {
			cfg.FleetScenarios = exp.FleetScenarioNames()
		}
		return runCampaign(w, cfg)
	}
	if *fleetMode {
		return fmt.Errorf("-fleet requires -campaign N (the fleet table rides the campaign machinery)")
	}

	start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr

	fmt.Fprintln(w, "A — deadline splitting vs naive EDF (adversarial server, miss rate per load)")
	edfRows, err := exp.NaiveEDFAblation(*seed, []float64{0.5, 0.7, 0.85, 0.95}, *per, *par)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range edfRows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%.2f", r.SplitMissRate),
			fmt.Sprintf("%.2f", r.NaiveMissRate),
		})
	}
	if err := exp.WriteTable(w, []string{"Load", "Systems", "Split", "Naive"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nB — MCKP solver quality (relative to DP, paper's 30-task sets)")
	solRows, err := exp.SolverAblation(*seed, *per, *par)
	if err != nil {
		return err
	}
	rows = nil
	for _, r := range solRows {
		rows = append(rows, []string{
			r.Solver.String(),
			fmt.Sprintf("%.4f", r.MeanQuality),
			fmt.Sprintf("%.4f", r.WorstQuality),
		})
	}
	if err := exp.WriteTable(w, []string{"Solver", "Mean", "Worst"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nC — Theorem 3 vs exact demand analysis (acceptance per load)")
	dbfRows, err := exp.DBFAblation(*seed, []float64{0.6, 0.8, 1.0, 1.2}, *per, *par)
	if err != nil {
		return err
	}
	rows = nil
	for _, r := range dbfRows {
		if r.Systems == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%d", r.Theorem3Accepted),
			fmt.Sprintf("%d", r.ExactAccepted),
		})
	}
	if err := exp.WriteTable(w, []string{"Load", "Systems", "Theorem3", "Exact"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nD — fixed priorities vs the paper's EDF (acceptance per load)")
	fpRows, err := exp.FPAblation(*seed, []float64{0.4, 0.6, 0.8}, *per, *par)
	if err != nil {
		return err
	}
	rows = nil
	for _, r := range fpRows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%d", r.FPOblivious),
			fmt.Sprintf("%d", r.FPJitter),
			fmt.Sprintf("%d", r.EDFTheorem3),
			fmt.Sprintf("%d", r.EDFExact),
		})
	}
	if err := exp.WriteTable(w,
		[]string{"Load", "Systems", "FP-obl", "FP-jit", "EDF-Thm3", "EDF-exact"}, rows); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nEnergy — client energy vs all-local execution (case study)")
	eCfg := exp.DefaultCaseStudyConfig()
	eCfg.Parallel = *par
	eRows, err := exp.EnergyStudy(eCfg, exp.DefaultPowerModel())
	if err != nil {
		return err
	}
	rows = nil
	for _, r := range eRows {
		rows = append(rows, []string{
			r.Scenario.String(),
			fmt.Sprintf("%.3f J", r.Offload.Joules),
			fmt.Sprintf("%.3f J", r.Local.Joules),
			fmt.Sprintf("%+.1f%%", r.Savings*100),
			fmt.Sprintf("%d/%d", r.Hits, r.Hits+r.Comps),
		})
	}
	if err := exp.WriteTable(w,
		[]string{"Scenario", "Offload", "All-local", "Savings", "Hits"}, rows); err != nil {
		return err
	}

	if *withChao {
		fmt.Fprintln(w, "\nF — fault robustness: miss rate and benefit vs chaos intensity (heavy preset × x)")
		cRows, err := exp.ChaosAblation(*seed, []float64{0, 0.25, 0.5, 0.75, 1}, *per, *par)
		if err != nil {
			return err
		}
		rows = nil
		for _, r := range cRows {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", r.Intensity),
				fmt.Sprintf("%d", r.Systems),
				fmt.Sprintf("%.2f", r.SplitMissRate),
				fmt.Sprintf("%.2f", r.NaiveMissRate),
				fmt.Sprintf("%.3f", r.SplitBenefit),
				fmt.Sprintf("%.3f", r.NaiveBenefit),
			})
		}
		if err := exp.WriteTable(w,
			[]string{"Intensity", "Systems", "Split-miss", "Naive-miss", "Split-ben", "Naive-ben"}, rows); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "ablations: wall-clock %.2fs (parallel=%d)\n",
		time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
	return nil
}

// runCampaign drives the checkpointed fleet sweep (DESIGN.md §5.8).
// A limited (interrupted) run prints only a progress line; a complete
// run prints the aggregate table, whose bytes depend solely on the
// campaign parameters — resumed or not.
func runCampaign(w io.Writer, cfg exp.CampaignConfig) error {
	res, err := exp.RunCampaign(cfg)
	if err != nil {
		return err
	}
	if !res.Complete() {
		fmt.Fprintf(w, "campaign interrupted: %d/%d cells complete (resume with the same -checkpoint)\n",
			len(res.Cells), res.Total)
		return nil
	}
	axis := "scenarios"
	if len(cfg.FleetScenarios) > 0 {
		axis = "fleet scenarios"
	}
	fmt.Fprintf(w, "Campaign — %d cells (tasksets=%d × %s × fault scales), %d tasks/cell\n",
		res.Total, cfg.TaskSets, axis, res.Config.Tasks)
	return exp.WriteCampaignTable(w, res)
}
