// Command ablations runs every design-choice ablation of DESIGN.md and
// prints the tables: deadline splitting vs naive EDF (A), MCKP solver
// quality (B), Theorem 3 vs exact demand analysis (C), EDF vs fixed
// priorities (D), the related-work greedy baseline (E), and the
// client-energy study.
//
// Usage:
//
//	ablations [-seed N] [-parallel N] [-per N] [-cpuprofile FILE] [-memprofile FILE]
//
// Generated systems fan out on -parallel workers; every table is
// bit-identical for every worker count, so -parallel only changes the
// wall clock, which is reported on stderr at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rtoffload/internal/exp"
	"rtoffload/internal/prof"
)

func main() {
	var (
		seed = flag.Uint64("seed", 7, "deterministic seed")
		par  = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		per  = flag.Int("per", 40, "systems per load level")
		cpu  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		mem  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpu, *mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(1)
	}
	defer stopProf()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		stopProf()
		os.Exit(1)
	}
	start := time.Now() //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr

	fmt.Println("A — deadline splitting vs naive EDF (adversarial server, miss rate per load)")
	edfRows, err := exp.NaiveEDFAblation(*seed, []float64{0.5, 0.7, 0.85, 0.95}, *per, *par)
	if err != nil {
		fail(err)
	}
	var rows [][]string
	for _, r := range edfRows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%.2f", r.SplitMissRate),
			fmt.Sprintf("%.2f", r.NaiveMissRate),
		})
	}
	if err := exp.WriteTable(os.Stdout, []string{"Load", "Systems", "Split", "Naive"}, rows); err != nil {
		fail(err)
	}

	fmt.Println("\nB — MCKP solver quality (relative to DP, paper's 30-task sets)")
	solRows, err := exp.SolverAblation(*seed, *per, *par)
	if err != nil {
		fail(err)
	}
	rows = nil
	for _, r := range solRows {
		rows = append(rows, []string{
			r.Solver.String(),
			fmt.Sprintf("%.4f", r.MeanQuality),
			fmt.Sprintf("%.4f", r.WorstQuality),
		})
	}
	if err := exp.WriteTable(os.Stdout, []string{"Solver", "Mean", "Worst"}, rows); err != nil {
		fail(err)
	}

	fmt.Println("\nC — Theorem 3 vs exact demand analysis (acceptance per load)")
	dbfRows, err := exp.DBFAblation(*seed, []float64{0.6, 0.8, 1.0, 1.2}, *per, *par)
	if err != nil {
		fail(err)
	}
	rows = nil
	for _, r := range dbfRows {
		if r.Systems == 0 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%d", r.Theorem3Accepted),
			fmt.Sprintf("%d", r.ExactAccepted),
		})
	}
	if err := exp.WriteTable(os.Stdout, []string{"Load", "Systems", "Theorem3", "Exact"}, rows); err != nil {
		fail(err)
	}

	fmt.Println("\nD — fixed priorities vs the paper's EDF (acceptance per load)")
	fpRows, err := exp.FPAblation(*seed, []float64{0.4, 0.6, 0.8}, *per, *par)
	if err != nil {
		fail(err)
	}
	rows = nil
	for _, r := range fpRows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.TargetLoad),
			fmt.Sprintf("%d", r.Systems),
			fmt.Sprintf("%d", r.FPOblivious),
			fmt.Sprintf("%d", r.FPJitter),
			fmt.Sprintf("%d", r.EDFTheorem3),
			fmt.Sprintf("%d", r.EDFExact),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"Load", "Systems", "FP-obl", "FP-jit", "EDF-Thm3", "EDF-exact"}, rows); err != nil {
		fail(err)
	}

	fmt.Println("\nEnergy — client energy vs all-local execution (case study)")
	eCfg := exp.DefaultCaseStudyConfig()
	eCfg.Parallel = *par
	eRows, err := exp.EnergyStudy(eCfg, exp.DefaultPowerModel())
	if err != nil {
		fail(err)
	}
	rows = nil
	for _, r := range eRows {
		rows = append(rows, []string{
			r.Scenario.String(),
			fmt.Sprintf("%.3f J", r.Offload.Joules),
			fmt.Sprintf("%.3f J", r.Local.Joules),
			fmt.Sprintf("%+.1f%%", r.Savings*100),
			fmt.Sprintf("%d/%d", r.Hits, r.Hits+r.Comps),
		})
	}
	if err := exp.WriteTable(os.Stdout,
		[]string{"Scenario", "Offload", "All-local", "Savings", "Hits"}, rows); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "ablations: wall-clock %.2fs (parallel=%d)\n",
		time.Since(start).Seconds(), *par) //rtlint:allow determinism -- wall-clock timer for operator feedback on stderr
}
