GO ?= go

.PHONY: build test vet race verify bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled suite: the parallel experiment engine must be clean
# under the race detector, not just deterministic in output.
race:
	$(GO) test -race ./...

# The pre-merge gate.
verify: vet build race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

fmt:
	gofmt -l -w .
