GO ?= go

# The demand-analysis micro-benchmarks tracked in BENCH_2.json.
MICROBENCH = BenchmarkQPA$$|BenchmarkImproveWithExact|BenchmarkAdmissionChurn

# The scheduler-engine benchmarks tracked in BENCH_4.json.
SCHEDBENCH = BenchmarkSchedSplitEDF|BenchmarkSchedNaiveEDF|BenchmarkSchedAbortAtDeadline|BenchmarkFigure2$$

# The admission-service benchmarks tracked in BENCH_6.json.
ADMITBENCH = BenchmarkAdmitdChurn|BenchmarkAdmitdService

# The MCKP core-solver benchmarks tracked in BENCH_7.json: the
# fleet-scale cold/warm solver curves plus the admission churn they
# accelerate. The stateless BnB/DP runs double as the baseline label.
MCKPBENCH = BenchmarkMCKPCoreSolve|BenchmarkMCKPCoreResolve|BenchmarkAdmitdChurn
MCKPBASE = BenchmarkMCKPBaselineBnB|BenchmarkMCKPBaselineDP

# The fleet-campaign benchmarks tracked in BENCH_9.json: streaming
# cells (one-pass checker, wheel queues) and the 100k-task on-disk
# sink endpoint, against the materialize-and-validate baseline.
CAMPBENCH = BenchmarkCampaignCellStreaming|BenchmarkCampaignCellDisk100k
CAMPBASE = BenchmarkCampaignCellBaseline

# Scratch directory for the campaign kill-and-resume smoke.
CAMP_SMOKE_DIR = .smoke-campaign
CAMP_SMOKE_ARGS = -campaign 3 -campaign-tasks 10 -parallel 2

# Scratch directory and args for the fleet-campaign smoke.
FLEET_SMOKE_DIR = .smoke-fleet
FLEET_SMOKE_ARGS = -fleet -campaign 2 -campaign-tasks 10 -parallel 2

.PHONY: build test vet race verify lint alloc-gate bench bench-sched bench-admitd bench-mckp bench-campaign bench-all bench-smoke smoke-admitd smoke-mckp smoke-campaign smoke-fleet profile fmt fmt-check cover fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled suite: the parallel experiment engine must be clean
# under the race detector, not just deterministic in output.
race:
	$(GO) test -race ./...

# Domain-invariant lint: determinism, exact arithmetic, overflow
# guards, error sinks. Exits nonzero on any finding; exemptions need
# an //rtlint:allow directive with a reason (see CONTRIBUTING.md).
lint:
	$(GO) run ./cmd/rtlint -dir .

# Dynamic twin of the //rtlint:hotpath annotations: every hot-path
# root has a testing.AllocsPerRun gate asserting the warm operation
# allocates zero times (see DESIGN.md §5.7). Covers the dispatch
# kernel, the time-wheel calendar, and the binary trace sink's emit
# path.
alloc-gate:
	$(GO) test -count=1 -run 'ZeroAlloc' \
		./internal/mckp ./internal/sched ./internal/sched/eventq \
		./internal/trace ./internal/admitd ./internal/dbf

# Short liveness run of the admission-control service: a couple of
# deterministic churn streams through cmd/admitd's bench mode.
smoke-admitd:
	$(GO) run ./cmd/admitd -bench -tenants 2 -ops 40 -seed 7 > /dev/null

# Fast functional pass over the core-solver differential tests: the
# solver-vs-BnB/brute agreement, the incremental bit-identity churn,
# and the admission wiring, without the full suite's simulation cost.
smoke-mckp:
	$(GO) test -count=1 ./internal/mckp -run 'TestSolver|TestFleetInstanceSolvable|FuzzMCKPSolverAgreement'
	$(GO) test -count=1 ./internal/core -run 'TestAdmissionMatchesRebuild|TestAdmissionCore'

# Campaign kill-and-resume smoke: interrupt a small checkpointed
# sweep with -campaign-limit, resume it, and require the resumed
# output to be byte-identical to an uninterrupted run.
smoke-campaign:
	@rm -rf $(CAMP_SMOKE_DIR) && mkdir -p $(CAMP_SMOKE_DIR)
	$(GO) run ./cmd/ablations $(CAMP_SMOKE_ARGS) \
		-checkpoint $(CAMP_SMOKE_DIR)/ckpt.jsonl -campaign-limit 4 > $(CAMP_SMOKE_DIR)/partial.txt
	grep -q 'campaign interrupted: 4/' $(CAMP_SMOKE_DIR)/partial.txt
	$(GO) run ./cmd/ablations $(CAMP_SMOKE_ARGS) \
		-checkpoint $(CAMP_SMOKE_DIR)/ckpt.jsonl > $(CAMP_SMOKE_DIR)/resumed.txt
	$(GO) run ./cmd/ablations $(CAMP_SMOKE_ARGS) > $(CAMP_SMOKE_DIR)/fresh.txt
	cmp $(CAMP_SMOKE_DIR)/resumed.txt $(CAMP_SMOKE_DIR)/fresh.txt
	@rm -rf $(CAMP_SMOKE_DIR)

# Fleet-campaign kill-and-resume smoke: a small multi-server fleet
# scenario sweep end-to-end through the fleet-aware decision manager,
# interrupted with -campaign-limit, resumed from its checkpoint, and
# required to match an uninterrupted run byte for byte.
smoke-fleet:
	@rm -rf $(FLEET_SMOKE_DIR) && mkdir -p $(FLEET_SMOKE_DIR)
	$(GO) test -count=1 ./internal/core -run 'TestFleetSingleServerOracle'
	$(GO) run ./cmd/ablations $(FLEET_SMOKE_ARGS) \
		-checkpoint $(FLEET_SMOKE_DIR)/ckpt.jsonl -campaign-limit 4 > $(FLEET_SMOKE_DIR)/partial.txt
	grep -q 'campaign interrupted: 4/' $(FLEET_SMOKE_DIR)/partial.txt
	$(GO) run ./cmd/ablations $(FLEET_SMOKE_ARGS) \
		-checkpoint $(FLEET_SMOKE_DIR)/ckpt.jsonl > $(FLEET_SMOKE_DIR)/resumed.txt
	$(GO) run ./cmd/ablations $(FLEET_SMOKE_ARGS) > $(FLEET_SMOKE_DIR)/fresh.txt
	cmp $(FLEET_SMOKE_DIR)/resumed.txt $(FLEET_SMOKE_DIR)/fresh.txt
	@rm -rf $(FLEET_SMOKE_DIR)

# The pre-merge gate.
verify: vet lint build race alloc-gate smoke-mckp smoke-admitd smoke-campaign smoke-fleet

# Micro-benchmarks of the incremental demand-analysis engine, recorded
# for regression tracking: benchstat-friendly text in BENCH_2.txt and a
# JSON session appended to BENCH_2.json (which already holds the
# pre-Analyzer baseline entry — do not overwrite it).
bench:
	$(GO) test -run='^$$' -bench='$(MICROBENCH)' -benchmem -count=5 . | tee BENCH_2.txt
	$(GO) run ./cmd/benchjson -label current -merge BENCH_2.json < BENCH_2.txt > BENCH_2.json.tmp
	mv BENCH_2.json.tmp BENCH_2.json

# Scheduler-engine benchmarks, recorded like `bench`: text in
# BENCH_4.txt, a JSON session appended to BENCH_4.json (which already
# holds the pre-event-calendar baseline entry — do not overwrite it).
bench-sched:
	$(GO) test -run='^$$' -bench='$(SCHEDBENCH)' -benchmem -count=5 . | tee BENCH_4.txt
	$(GO) run ./cmd/benchjson -label current -merge BENCH_4.json < BENCH_4.txt > BENCH_4.json.tmp
	mv BENCH_4.json.tmp BENCH_4.json

# Admission-churn benchmarks: incremental path vs full-rebuild
# reference, recorded like `bench`: text in BENCH_6.txt, a JSON session
# appended to BENCH_6.json (which already holds the rebuild-baseline
# entry — do not overwrite it).
bench-admitd:
	$(GO) test -run='^$$' -bench='$(ADMITBENCH)' -benchmem -count=5 . | tee BENCH_6.txt
	$(GO) run ./cmd/benchjson -label current -merge BENCH_6.json < BENCH_6.txt > BENCH_6.json.tmp
	mv BENCH_6.json.tmp BENCH_6.json

# MCKP core-solver benchmarks: fleet-scale cold solves and warm
# incremental re-solves against the stateless BnB/DP baselines, plus
# the admission churn that rides the persistent solver. The baseline
# session is regenerated each run (the stateless solvers still exist in
# tree), so BENCH_7.json is written fresh rather than merged.
bench-mckp:
	$(GO) test -run='^$$' -bench='$(MCKPBASE)' -benchmem -count=5 ./internal/mckp > BENCH_7.base.txt
	$(GO) test -run='^$$' -bench='$(MCKPBENCH)' -benchmem -count=5 ./internal/mckp . | tee BENCH_7.txt
	$(GO) run ./cmd/benchjson -label baseline < BENCH_7.base.txt > BENCH_7.json
	$(GO) run ./cmd/benchjson -label current -merge BENCH_7.json < BENCH_7.txt > BENCH_7.json.tmp
	mv BENCH_7.json.tmp BENCH_7.json
	rm -f BENCH_7.base.txt

# Fleet-campaign benchmarks: streaming cells at 1k/10k tasks plus the
# 100k-task on-disk endpoint, against the materialize-and-validate
# baseline (regenerated each run — the baseline path still exists in
# tree), recorded as BENCH_9.txt / BENCH_9.json. The 100k fixed-memory
# ceiling assertion runs alongside.
bench-campaign:
	$(GO) test -count=1 -run Test100kUnderMemoryCeiling ./internal/sched
	$(GO) test -run='^$$' -bench='$(CAMPBASE)' -benchmem -count=3 -benchtime=2x ./internal/sched > BENCH_9.base.txt
	$(GO) test -run='^$$' -bench='$(CAMPBENCH)' -benchmem -count=3 -benchtime=2x ./internal/sched | tee BENCH_9.txt
	$(GO) run ./cmd/benchjson -label baseline < BENCH_9.base.txt > BENCH_9.json
	$(GO) run ./cmd/benchjson -label current -merge BENCH_9.json < BENCH_9.txt > BENCH_9.json.tmp
	mv BENCH_9.json.tmp BENCH_9.json
	rm -f BENCH_9.base.txt

# Smoke-run every benchmark once (no timing value, just liveness).
bench-all:
	$(GO) test -bench=. -benchtime=1x -run=^$$ . ./internal/sched

# CI alias for bench-all: every benchmark must still run to completion
# on one iteration, catching bit-rot without paying for timing runs.
bench-smoke: bench-all

# Capture CPU+heap profiles of the benchmarks and of an ablations run;
# inspect with e.g.
#	$(GO) tool pprof -top cpu.out
#	$(GO) tool pprof -top -sample_index=alloc_objects mem.out
# (cmd/ablations and cmd/casestudy take -cpuprofile/-memprofile too.)
profile:
	$(GO) test -run='^$$' -bench='$(MICROBENCH)' -benchmem \
		-cpuprofile cpu.out -memprofile mem.out .
	$(GO) run ./cmd/ablations -per 10 -cpuprofile ablations_cpu.out -memprofile ablations_mem.out > /dev/null
	@echo "profiles: cpu.out mem.out ablations_cpu.out ablations_mem.out"

# Coverage gate: every internal package must hold ≥ 85% statement
# coverage. internal/prof is exempt from the threshold check only in
# the sense that it must still HAVE tests — its coverage is dominated
# by runtime/pprof plumbing, so it is held to a lower 50% bar.
cover:
	$(GO) test -count=1 -cover ./internal/... | awk ' \
		/no test files/ { print "FAIL (no tests): " $$0; bad = 1; next } \
		/coverage:/ { \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") pct = substr($$(i+1), 1, length($$(i+1)) - 1); \
			min = ($$2 ~ /internal\/prof$$/) ? 50.0 : 85.0; \
			if (pct + 0 < min) { print "FAIL (< " min "%): " $$0; bad = 1 } else print \
		} \
		END { exit bad }'

# Short fuzz runs (~10s per target) so CI exercises the generators and
# shrinks beyond the checked-in seed corpora.
fuzz-smoke:
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzEngineMatchesReference -fuzztime=10s
	$(GO) test ./internal/dbf -run='^$$' -fuzz=FuzzAnalyzerDifferential -fuzztime=10s
	$(GO) test ./internal/chaos/invariant -run='^$$' -fuzz=FuzzChaosHardGuarantee -fuzztime=10s
	$(GO) test ./internal/mckp -run='^$$' -fuzz=FuzzMCKPSolverAgreement -fuzztime=10s
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzFleetDecide -fuzztime=10s

fmt:
	gofmt -l -w .

# Non-mutating formatting gate for CI: fails if any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
