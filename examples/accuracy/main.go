// Accuracy: what bad response-time estimates cost (the paper's §6.2 in
// miniature).
//
// The Benefit and Response Time Estimator cannot measure the
// unreliable server perfectly. This example takes one random 30-task
// system, perturbs the estimator's view by an accuracy ratio x — the
// discrete points of Gi move to (1+x)·ri — and compares what the DP
// decision *claims* it will earn against what it *realizes* under the
// true response-time distribution, both analytically and in the EDF
// simulator.
//
// Optimistic estimates (x < 0) are the dangerous direction: the chosen
// budgets undershoot the real latencies, the compensation timer fires
// constantly, and realized benefit collapses — yet no deadline is ever
// missed, because the compensation path is part of the guarantee.
//
// Run with:
//
//	go run ./examples/accuracy
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/benefit"
	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func main() {
	rng := stats.NewRNG(2014)
	trueSet, err := task.GenerateFigure3(rng.Fork(), task.DefaultFigure3Params())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("x      claimed  realized  sim-hits  compensations  misses")
	for _, x := range []float64{-0.4, -0.2, 0, 0.2, 0.4} {
		estSet, err := core.PerturbSet(trueSet, x)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := core.Decide(estSet, core.Options{Solver: core.SolverDP})
		if err != nil {
			log.Fatal(err)
		}
		realized, err := core.RealizedBenefit(dec, trueSet)
		if err != nil {
			log.Fatal(err)
		}

		// Ground truth: response times drawn from the true CDFs, timers
		// set to the decided (erroneous) budgets.
		samplers := map[int]server.ResponseSampler{}
		for _, c := range dec.Choices {
			if c.Offload {
				samplers[c.Task.ID] = benefit.FromTask(trueSet.ByID(c.Task.ID))
			}
		}
		res, err := sched.Run(sched.Config{
			Assignments: dec.Assignments(),
			Server:      server.NewCDF(rng.Fork(), samplers),
			Horizon:     rtime.FromSeconds(20),
		})
		if err != nil {
			log.Fatal(err)
		}
		hits, comps := 0, 0
		for _, st := range res.PerTask {
			hits += st.Hits
			comps += st.Compensations
		}
		fmt.Printf("%+.1f   %7.2f  %8.2f  %8d  %13d  %6d\n",
			x, dec.TotalExpected, realized, hits, comps, res.Misses)
	}
	fmt.Println("\nNote the x=-0.4 row: the decision claims the most benefit, realizes the least,")
	fmt.Println("and the compensation count explodes — exactly the failure mode §6.2 warns about.")
}
