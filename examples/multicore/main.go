// Multicore: the paper's mechanism lifted to a partitioned multicore
// platform.
//
// Eight tasks whose combined local utilization exceeds one processor
// are partitioned across cores (worst-fit decreasing on local
// density); each core then runs its own Offloading Decision Manager
// with its own Theorem-3 capacity. More cores mean more spare capacity
// per core, so more — and higher — offloading levels fit.
//
// Run with:
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/core"
	"rtoffload/internal/partition"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func main() {
	ms := rtime.FromMillis
	var set task.Set
	for i := 0; i < 8; i++ {
		period := ms(400)
		c := ms(140) // 0.35 local utilization each — 2.8 cores worth
		set = append(set, &task.Task{
			ID: i, Name: fmt.Sprintf("cam%d", i),
			Period: period, Deadline: period,
			LocalWCET: c, Setup: ms(4), Compensation: c,
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(60), Benefit: 3, PayloadBytes: 60_000},
				{Response: ms(150), Benefit: 8, PayloadBytes: 240_000},
			},
		})
	}

	for _, cores := range []int{4, 6, 8} {
		dec, err := partition.Decide(set, partition.Options{
			Cores: cores,
			Core:  core.Options{Solver: core.SolverDP},
		})
		if err != nil {
			log.Fatal(err)
		}
		rng := stats.NewRNG(11)
		res, err := partition.Simulate(dec, func(int) server.Server {
			s, err := server.NewScenario(rng.Fork(), server.Idle)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}, rtime.FromSeconds(5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d cores: offloaded %d/8 tasks, expected benefit %.0f, simulated quality %.2f× baseline, misses %d\n",
			cores, dec.OffloadedCount(), dec.TotalExpected, res.NormalizedBenefit(), res.Misses)
		for c, pc := range dec.PerCore {
			if pc == nil {
				continue
			}
			fmt.Printf("  core %d: %d tasks, Theorem-3 total %s\n",
				c, len(pc.Choices), pc.Theorem3Total.FloatString(3))
		}
	}
	fmt.Println("\n3 cores cannot host the local load (8 tasks × 0.35 density allows ≤2 per core):")
	if _, err := partition.Decide(set, partition.Options{Cores: 3, Core: core.Options{Solver: core.SolverDP}}); err != nil {
		fmt.Println("  ", err)
	}
}
