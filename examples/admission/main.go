// Admission: the Offloading Decision Manager as an online admission
// controller.
//
// Tasks arrive one at a time. Each arrival triggers a re-decision; an
// arrival that would make the system unschedulable — even with every
// task executing locally — is rejected and the previous configuration
// stays in force. When a task leaves, the freed capacity is
// immediately re-invested into better offloading levels for the
// remaining tasks.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/task"
)

func vision(id int, name string, periodMS int64, localMS int64, gains ...float64) *task.Task {
	ms := rtime.FromMillis
	t := &task.Task{
		ID: id, Name: name,
		Period: ms(periodMS), Deadline: ms(periodMS),
		LocalWCET:    ms(localMS),
		Setup:        ms(localMS / 20),
		Compensation: ms(localMS),
		LocalBenefit: 10,
	}
	for i, g := range gains {
		t.Levels = append(t.Levels, task.Level{
			Response: ms(periodMS / 5 * int64(i+1)),
			Benefit:  g,
		})
	}
	return t
}

func report(a *core.Admission) {
	dec := a.Decision()
	if dec == nil {
		fmt.Println("  (no tasks admitted)")
		return
	}
	for _, c := range dec.Choices {
		if c.Offload {
			fmt.Printf("  %-10s offload level %d (Ri=%v)\n", c.Task.Name, c.Level+1, c.Budget())
		} else {
			fmt.Printf("  %-10s local\n", c.Task.Name)
		}
	}
	fmt.Printf("  Theorem 3 total %s, expected benefit %.1f\n",
		dec.Theorem3Total.FloatString(3), dec.TotalExpected)
}

func main() {
	adm := core.NewAdmission(core.Options{Solver: core.SolverDP})

	fmt.Println("① admit lidar (30% local utilization):")
	if err := adm.Add(vision(1, "lidar", 100, 30, 14, 20)); err != nil {
		log.Fatal(err)
	}
	report(adm)

	fmt.Println("② admit detector (40% local utilization):")
	if err := adm.Add(vision(2, "detector", 200, 80, 18, 30)); err != nil {
		log.Fatal(err)
	}
	report(adm)

	fmt.Println("③ try to admit a 50%-utilization mapper — must be rejected:")
	if err := adm.Add(vision(3, "mapper", 100, 50, 40)); err != nil {
		fmt.Println("  rejected:", err)
	} else {
		log.Fatal("mapper unexpectedly admitted")
	}
	report(adm)

	fmt.Println("④ lidar leaves; capacity is re-invested:")
	if _, err := adm.Remove(1); err != nil {
		log.Fatal(err)
	}
	report(adm)

	fmt.Println("⑤ now the mapper fits:")
	if err := adm.Add(vision(3, "mapper", 100, 50, 40)); err != nil {
		log.Fatal(err)
	}
	report(adm)
}
