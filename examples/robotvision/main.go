// Robotvision: the paper's §6.1 case study as a library consumer would
// run it.
//
// Four image-processing tasks (stereo vision, edge detection, object
// recognition, motion detection) capture frames from an 800×600
// camera. Locally the CPU can only afford scaled-down frames; a GPU
// server across the wireless network can process full frames — but its
// timing is unreliable. The example
//
//   - builds the benefit ladders from real PSNR measurements on
//     synthetic frames (the regenerated Table 1),
//   - probes the server to estimate per-level response budgets,
//   - decides with the DP solver,
//   - and measures 10 s of operation under the busy / not-busy / idle
//     server scenarios.
//
// Run with:
//
//	go run ./examples/robotvision
package main

import (
	"fmt"
	"log"
	"os"

	"rtoffload/internal/core"
	"rtoffload/internal/exp"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
)

func main() {
	cfg := exp.DefaultCaseStudyConfig()
	cfg.Probes = 200 // keep the example snappy

	fmt.Println("Measuring benefit functions (PSNR per scaling level) and probing the server…")
	rows, err := exp.Table1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.RenderTable1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	set, err := exp.CaseTasks(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Importance weights per the paper: 1, 2, 3, 4.
	for i := range set {
		set[i].Weight = float64(i + 1)
	}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nOffloading decision (weights 1,2,3,4):")
	for _, c := range dec.Choices {
		if c.Offload {
			lv := c.Task.Levels[c.Level]
			fmt.Printf("  %-20s offload %-9s budget %-9v quality %.1f dB\n",
				c.Task.Name, lv.Label, c.Budget(), lv.Benefit)
		} else {
			fmt.Printf("  %-20s local execution, quality %.1f dB\n", c.Task.Name, c.Task.LocalBenefit)
		}
	}
	fmt.Printf("  Theorem 3 total: %s\n\n", dec.Theorem3Total.FloatString(4))

	for _, scenario := range []server.Scenario{server.Busy, server.NotBusy, server.Idle} {
		qcfg, err := exp.CaseServerConfig(scenario)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := server.NewQueue(stats.NewRNG(42), qcfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sched.Run(sched.Config{
			Assignments: dec.Assignments(),
			Server:      srv,
			Horizon:     rtime.FromSeconds(cfg.HorizonSeconds),
		})
		if err != nil {
			log.Fatal(err)
		}
		hits, comps := 0, 0
		for _, st := range res.PerTask {
			hits += st.Hits
			comps += st.Compensations
		}
		fmt.Printf("scenario %-9s in-time results %2d, compensations %2d, misses %d, weighted quality %.2f× baseline\n",
			scenario, hits, comps, res.Misses, res.NormalizedBenefit())
	}
	fmt.Println("\nEvery configuration is guaranteed by Theorem 3: even the busy scenario misses no deadlines.")
}
