// Quickstart: offload two vision tasks to a timing unreliable GPU
// server without ever risking a deadline.
//
// The example walks the full mechanism of the paper in ~five steps:
//
//  1. describe the tasks (local WCET, setup, compensation, and the
//     discrete benefit ladder Gi(ri));
//  2. let the Offloading Decision Manager pick, per task, local
//     execution or an offloading level with its response-time budget
//     Ri (multiple-choice knapsack over the Theorem-3 weights);
//  3. inspect the guarantee: the exact Theorem-3 total is ≤ 1;
//  4. simulate the EDF schedule with split deadlines against an
//     unreliable server — results that return within Ri are used,
//     anything else triggers the local compensation;
//  5. confirm zero deadline misses either way.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func main() {
	ms := rtime.FromMillis

	// Step 1 — the task set. τ1 is the motivation example: object
	// recognition that takes 278 ms locally on a small frame but could
	// process a far larger frame on the GPU (benefit = image quality).
	recognition := &task.Task{
		ID: 1, Name: "recognition",
		Period: ms(1000), Deadline: ms(1000),
		LocalWCET:    ms(278),
		Setup:        ms(12), // compress + transmit path
		Compensation: ms(278),
		LocalBenefit: 22.5, // PSNR of the locally processable frame
		Levels: []task.Level{
			{Response: ms(150), Benefit: 30.6, PayloadBytes: 120_000},
			{Response: ms(400), Benefit: 99, PayloadBytes: 480_000},
		},
	}
	tracking := &task.Task{
		ID: 2, Name: "tracking",
		Period: ms(500), Deadline: ms(500),
		LocalWCET:    ms(120),
		Setup:        ms(8),
		Compensation: ms(120),
		LocalBenefit: 25,
		Levels: []task.Level{
			{Response: ms(100), Benefit: 34, PayloadBytes: 80_000},
			{Response: ms(250), Benefit: 41, PayloadBytes: 200_000},
		},
	}
	set := task.Set{recognition, tracking}

	// Step 2 — decide.
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range dec.Choices {
		if c.Offload {
			fmt.Printf("%-12s → offload, budget Ri = %v, expected quality %.1f dB\n",
				c.Task.Name, c.Budget(), c.Task.Levels[c.Level].Benefit)
		} else {
			fmt.Printf("%-12s → local execution, quality %.1f dB\n", c.Task.Name, c.Task.LocalBenefit)
		}
	}

	// Step 3 — the hard real-time guarantee.
	fmt.Printf("Theorem 3 total: %s (≤ 1 ⇒ every deadline is met even if no result ever returns)\n\n",
		dec.Theorem3Total.FloatString(4))

	// Step 4 — simulate against an unreliable GPU server (idle
	// scenario) and against the adversarial server that never answers.
	for _, tc := range []struct {
		name string
		srv  server.Server
	}{
		{"idle GPU server", mustScenario(server.Idle)},
		{"server never responds", server.Fixed{Lost: true}},
	} {
		res, err := sched.Run(sched.Config{
			Assignments: dec.Assignments(),
			Server:      tc.srv,
			Horizon:     rtime.FromSeconds(10),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Step 5 — outcomes.
		fmt.Printf("%s:\n", tc.name)
		for _, t := range set {
			st := res.PerTask[t.ID]
			fmt.Printf("  %-12s jobs %2d  in-time results %2d  compensations %2d  misses %d\n",
				t.Name, st.Released, st.Hits, st.Compensations, st.Misses)
		}
		fmt.Printf("  normalized quality vs all-local: %.2f×\n\n", res.NormalizedBenefit())
	}
}

func mustScenario(s server.Scenario) server.Server {
	srv, err := server.NewScenario(stats.NewRNG(7), s)
	if err != nil {
		log.Fatal(err)
	}
	return srv
}
