// Adaptive: tracking a bursty server with epoch-based re-estimation.
//
// The Benefit and Response Time Estimator is not a one-shot tool: when
// the unreliable component's load is non-stationary (bursty Wi-Fi, a
// GPU server with tidal background work), yesterday's budgets are
// wrong today. This example runs the paper's mechanism in closed loop:
// every two-second epoch the controller re-probes the live server,
// refreshes the response-time budgets, re-solves the knapsack, and
// runs the next epoch — against a Gilbert–Elliott server alternating
// between a fast and a congested regime.
//
// The hard real-time guarantee never depends on estimation quality;
// adaptation only converts compensations back into served results.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func main() {
	ms := rtime.FromMillis
	var set task.Set
	for i := 1; i <= 2; i++ {
		set = append(set, &task.Task{
			ID: i, Name: fmt.Sprintf("sensor%d", i),
			Period: ms(200), Deadline: ms(200),
			LocalWCET: ms(40), Setup: ms(3), Compensation: ms(40),
			LocalBenefit: 1,
			Levels: []task.Level{
				{Response: ms(20), Benefit: 6, PayloadBytes: 1000},
				{Response: ms(60), Benefit: 6.5, PayloadBytes: 1000},
			},
		})
	}
	srv, err := server.NewGilbert(stats.NewRNG(33), server.GilbertConfig{
		GoodDuration: rtime.FromSeconds(4), BadDuration: rtime.FromSeconds(4),
		GoodLatency: ms(8), BadLatency: ms(120),
		Sigma: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	epochs, err := core.AdaptiveRun(set, srv, core.AdaptiveConfig{
		Epoch:     rtime.FromSeconds(2),
		Epochs:    10,
		Estimator: core.EstimatorConfig{Probes: 12, Spacing: ms(5), Quantile: 0.9},
		Solver:    core.SolverDP,
	}, stats.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch  budget(τ1)  hits  comps  misses")
	for _, e := range epochs {
		hits, comps := 0, 0
		for _, st := range e.Sim.PerTask {
			hits += st.Hits
			comps += st.Compensations
		}
		budget := "local"
		for _, c := range e.Decision.Choices {
			if c.Task.ID == 1 && c.Offload {
				budget = c.Budget().String()
			}
		}
		fmt.Printf("%5d  %-10s  %4d  %5d  %6d\n", e.Epoch, budget, hits, comps, e.Sim.Misses)
	}
	fmt.Println("\nEpochs probed during the congested regime pick ≈120ms budgets (or stay local);")
	fmt.Println("fast-regime epochs drop back to ≈8ms. Deadline misses stay at zero throughout.")
}
