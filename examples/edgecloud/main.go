// Edgecloud: choosing between two unreliable components per task.
//
// A robot can ship a small frame to a nearby edge box (fast network,
// modest GPU) or the full frame to a cloud GPU farm (slow network,
// best quality). Each option is just another level of the benefit
// function, routed to its component via ServerID — the Offloading
// Decision Manager then trades the components off through the same
// multiple-choice knapsack, and the Theorem-3 guarantee covers both:
// if neither answers, local compensations still meet every deadline.
//
// Run with:
//
//	go run ./examples/edgecloud
package main

import (
	"fmt"
	"log"

	"rtoffload/internal/core"
	"rtoffload/internal/rtime"
	"rtoffload/internal/sched"
	"rtoffload/internal/server"
	"rtoffload/internal/stats"
	"rtoffload/internal/task"
)

func main() {
	ms := rtime.FromMillis
	rng := stats.NewRNG(7)

	mkServers := func() map[string]server.Server {
		edge, err := server.NewQueue(rng.Fork(), server.QueueConfig{
			Workers: 4, BandwidthBytesPerSec: 10_000_000,
			NetLatencyMean: ms(2), NetLatencySigma: 0.3,
			ServiceMean: ms(9), ServiceRefBytes: 20_000, ServiceJitter: 0.2,
		})
		if err != nil {
			log.Fatal(err)
		}
		cloud, err := server.NewQueue(rng.Fork(), server.QueueConfig{
			Workers: 8, BandwidthBytesPerSec: 2_500_000,
			NetLatencyMean: ms(25), NetLatencySigma: 0.4,
			ServiceMean: ms(6), ServiceRefBytes: 200_000, ServiceJitter: 0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return map[string]server.Server{"edge": edge, "cloud": cloud}
	}

	var set task.Set
	for i := 1; i <= 3; i++ {
		set = append(set, &task.Task{
			ID: i, Name: fmt.Sprintf("cam%d", i),
			Period: ms(300), Deadline: ms(300),
			LocalWCET: ms(52), Setup: ms(4), Compensation: ms(52),
			LocalBenefit: 1,
			Levels: []task.Level{
				{ServerID: "edge", Response: ms(15), Benefit: 4, PayloadBytes: 20_000},
				{ServerID: "cloud", Response: ms(120), Benefit: 9, PayloadBytes: 200_000},
			},
		})
	}

	// Probe both components, decide, simulate.
	// Margin 0.3: probing measures an unloaded stream; the margin
	// absorbs the queueing our own three concurrent offloads add.
	if err := core.EstimateBudgetsRouted(nil, mkServers(), set,
		core.EstimatorConfig{Probes: 60, Spacing: ms(40), Quantile: 0.9, Margin: 0.3}); err != nil {
		log.Fatal(err)
	}
	dec, err := core.Decide(set, core.Options{Solver: core.SolverDP})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range dec.Choices {
		if c.Offload {
			lv := c.Task.Levels[c.Level]
			fmt.Printf("%-5s → %-5s budget %-10v quality %.0f\n", c.Task.Name, lv.ServerID, c.Budget(), lv.Benefit)
		} else {
			fmt.Printf("%-5s → local\n", c.Task.Name)
		}
	}
	fmt.Printf("Theorem 3 total: %s\n\n", dec.Theorem3Total.FloatString(3))

	res, err := sched.Run(sched.Config{
		Assignments: dec.Assignments(),
		Servers:     mkServers(),
		Horizon:     rtime.FromSeconds(10),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tk := range set {
		st := res.PerTask[tk.ID]
		fmt.Printf("%-5s jobs %2d hits %2d comps %2d misses %d\n",
			tk.Name, st.Released, st.Hits, st.Compensations, st.Misses)
	}
	fmt.Printf("quality vs all-local: %.2f×\n", res.NormalizedBenefit())
}
