module rtoffload

go 1.22
